package drivers

import (
	"fmt"
	"strings"

	"repro/internal/winmodel"
)

// Routine is one dispatch routine of a generated driver model.
type Routine struct {
	Name string
	Cat  Category
}

// roster is the dispatch-routine set every generated driver exposes (the
// hard workers are emitted only for drivers with hard fields).
var roster = []Routine{
	{"DispatchCreate", CatCreate},
	{"DispatchClose", CatClose},
	{"DispatchRead", CatRead},
	{"DispatchWrite", CatWrite},
	{"DispatchIoctl", CatIoctl},
	{"DispatchIoctlEx", CatIoctl},
	{"DispatchInternalIoctl", CatInternalIoctl},
	{"DispatchCleanup", CatCleanup},
	{"DispatchPnp", CatPnp},
	{"DispatchPnpQuery", CatPnp},
	{"DispatchPnpStartRemove", CatPnpStartRemove},
	{"DispatchPowerSystem", CatPowerSystem},
	{"DispatchPowerSystemQuery", CatPowerSystem},
	{"DispatchPowerDevice", CatPowerDevice},
	{"HardWorkerA", CatHardWork},
	{"HardWorkerB", CatHardWork},
}

// accessKind is one planted access snippet.
type accessKind int

const (
	readU      accessKind = iota // unprotected read
	writeU                       // unprotected write
	readP                        // spin-lock-protected read
	writeP                       // spin-lock-protected write
	readDecide                   // unprotected read feeding a branch (benign pattern)
	evSet                        // KeSetEvent
	evWait                       // KeWaitForSingleObject (emitted last)
	refInc                       // InterlockedIncrement
	refDec                       // InterlockedDecrement
)

type plantedAccess struct {
	field string
	kind  accessKind
}

// AmplifierBound is the counter bound of the hard-worker loop; together
// with the evaluation's per-field state budget it determines which fields
// exceed the resource bound (the Table 1 timeout columns).
const AmplifierBound = 6000

// Model is a generated driver model: the library text (records, winmodel
// routines, dispatch routines) without a harness, plus the metadata the
// evaluation uses to build per-field harnesses.
type Model struct {
	Spec *DriverSpec
	// Text is the harness-less model source.
	Text string
	// FieldRoutines maps each extension field to the dispatch routines
	// that access it — the slice of the program relevant to that field.
	FieldRoutines map[string][]string
	// RoutineCats maps routine name to IRP category.
	RoutineCats map[string]Category
	// LOC is the number of non-blank lines of the generated model text.
	LOC int
}

// Generate builds the model for one driver spec. Field-to-routine
// assignment is deterministic, so repeated generations agree.
func Generate(spec *DriverSpec) *Model {
	g := &generator{
		spec:     spec,
		accesses: map[string][]plantedAccess{},
		routines: map[string][]string{},
		cats:     map[string]Category{},
	}
	for _, r := range roster {
		g.cats[r.Name] = r.Cat
	}
	for _, f := range spec.Fields {
		g.plant(f)
	}
	text := g.render()
	m := &Model{
		Spec:          spec,
		Text:          text,
		FieldRoutines: g.routines,
		RoutineCats:   g.cats,
		LOC:           countLOC(text),
	}
	return m
}

type generator struct {
	spec *DriverSpec
	// accesses collects the snippets per routine, in plant order.
	accesses map[string][]plantedAccess
	// routines records which routines access each field.
	routines map[string][]string
	cats     map[string]Category
	rot      int // rotation counter for pair variety
	hasHard  bool
}

func (g *generator) add(routine, field string, kind accessKind) {
	g.accesses[routine] = append(g.accesses[routine], plantedAccess{field: field, kind: kind})
	for _, r := range g.routines[field] {
		if r == routine {
			return
		}
	}
	g.routines[field] = append(g.routines[field], routine)
}

// normalPairs are routine pairs the refined harness always allows; real
// races and protected fields rotate through them.
var normalPairs = [][2]string{
	{"DispatchRead", "DispatchWrite"},
	{"DispatchIoctl", "DispatchRead"},
	{"DispatchCreate", "DispatchIoctlEx"},
	{"DispatchWrite", "DispatchInternalIoctl"},
	{"DispatchCleanup", "DispatchRead"},
	{"DispatchClose", "DispatchWrite"},
	{"DispatchPnp", "DispatchPowerDevice"},
	{"DispatchPowerSystem", "DispatchPowerDevice"},
}

func (g *generator) nextPair() [2]string {
	p := normalPairs[g.rot%len(normalPairs)]
	g.rot++
	return p
}

func (g *generator) plant(f FieldSpec) {
	switch f.Pattern {
	case FieldLock:
		// The lock word is used by every protected access; it has no
		// dispatch routines of its own (its per-field run has an empty
		// harness and is trivially race-free).
		g.routines[f.Name] = nil

	case FieldEvent:
		g.add("DispatchCreate", f.Name, evSet)
		g.add("DispatchClose", f.Name, evWait)

	case FieldRefCount:
		g.add("DispatchCreate", f.Name, refInc)
		g.add("DispatchClose", f.Name, refDec)

	case FieldProtected:
		p := g.nextPair()
		g.add(p[0], f.Name, writeP)
		g.add(p[1], f.Name, readP)

	case FieldReadShared:
		p := g.nextPair()
		g.add(p[0], f.Name, readU)
		g.add(p[1], f.Name, readU)

	case FieldRace:
		if f.Name == "DevicePnPState" {
			// Figure 6: DispatchPnp writes DevicePnPState while holding
			// the remove lock (modeled by the spin lock: still a lock,
			// still racing the unprotected read); DispatchPower reads it
			// with no protection.
			g.add("DispatchPnp", f.Name, writeP)
			g.add("DispatchPowerDevice", f.Name, readU)
			return
		}
		p := g.nextPair()
		g.add(p[0], f.Name, writeU)
		g.add(p[1], f.Name, readU)

	case FieldBenign:
		// fakemodem OpenCount: increments under the lock, one unprotected
		// read feeding a decision.
		g.add("DispatchCreate", f.Name, writeP)
		g.add("DispatchCleanup", f.Name, readDecide)

	case FieldRaceIoctl:
		g.add("DispatchIoctl", f.Name, writeU)
		g.add("DispatchIoctlEx", f.Name, readU)

	case FieldRacePnp:
		g.add("DispatchPnp", f.Name, writeU)
		g.add("DispatchPnpQuery", f.Name, readU)

	case FieldRaceStartRemove:
		g.add("DispatchPnpStartRemove", f.Name, writeU)
		g.add("DispatchRead", f.Name, readU)

	case FieldRacePowerSame:
		g.add("DispatchPowerSystem", f.Name, writeU)
		g.add("DispatchPowerSystemQuery", f.Name, readU)

	case FieldHard:
		g.hasHard = true
		g.add("HardWorkerA", f.Name, readP)
		g.add("HardWorkerB", f.Name, writeP)

	default:
		panic(fmt.Sprintf("drivers: unknown field pattern %v", f.Pattern))
	}
}

// render emits the model source: record declaration, the winmodel library,
// and one function per dispatch routine.
func (g *generator) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Synthetic model of driver %q (see DESIGN.md for the substitution).\n", g.spec.Name)
	b.WriteString("record DEVICE_EXTENSION {\n")
	for _, f := range g.spec.Fields {
		fmt.Fprintf(&b, "  %s;\n", f.Name)
	}
	b.WriteString("}\n")
	b.WriteString(winmodel.Source)
	b.WriteString("\n")

	padLines := int(g.spec.KLOC * 3)
	for _, r := range roster {
		if r.Cat == CatHardWork && !g.hasHard {
			continue
		}
		if r.Cat == CatHardWork {
			g.renderHard(&b, r.Name)
			continue
		}
		g.renderDispatch(&b, r.Name, padLines)
	}
	return b.String()
}

// renderDispatch emits one ordinary dispatch routine: padding (straight-
// line local arithmetic standing in for the driver's per-IRP bookkeeping,
// scaled by the real driver's KLOC), then the planted accesses, with
// event waits last so they cannot mask accesses behind a block.
func (g *generator) renderDispatch(b *strings.Builder, name string, padLines int) {
	fmt.Fprintf(b, "func %s(e) {\n", name)
	b.WriteString("  var v;\n  var status;\n  var work;\n")
	b.WriteString("  status = 0;\n")
	b.WriteString("  work = 1;\n")
	for i := 0; i < padLines; i++ {
		fmt.Fprintf(b, "  work = work + %d;\n", i%7)
	}

	accs := g.accesses[name]
	var waits []plantedAccess
	seq := 0
	for _, a := range accs {
		if a.kind == evWait {
			waits = append(waits, a)
			continue
		}
		g.renderAccess(b, a, &seq)
	}
	for _, a := range waits {
		g.renderAccess(b, a, &seq)
	}
	b.WriteString("  return status;\n")
	b.WriteString("}\n\n")
}

func (g *generator) renderAccess(b *strings.Builder, a plantedAccess, seq *int) {
	*seq++
	val := *seq % 3
	switch a.kind {
	case readU:
		fmt.Fprintf(b, "  v = e->%s;\n", a.field)
	case writeU:
		fmt.Fprintf(b, "  e->%s = %d;\n", a.field, val)
	case readP:
		fmt.Fprintf(b, "  KeAcquireSpinLock(&e->SpinLock);\n")
		fmt.Fprintf(b, "  v = e->%s;\n", a.field)
		fmt.Fprintf(b, "  KeReleaseSpinLock(&e->SpinLock);\n")
	case writeP:
		fmt.Fprintf(b, "  KeAcquireSpinLock(&e->SpinLock);\n")
		fmt.Fprintf(b, "  e->%s = %d;\n", a.field, val)
		fmt.Fprintf(b, "  KeReleaseSpinLock(&e->SpinLock);\n")
	case readDecide:
		fmt.Fprintf(b, "  v = e->%s;\n", a.field)
		fmt.Fprintf(b, "  if (v == 0) {\n    status = status + 1;\n  }\n")
	case evSet:
		fmt.Fprintf(b, "  KeSetEvent(&e->%s);\n", a.field)
	case evWait:
		fmt.Fprintf(b, "  KeWaitForSingleObject(&e->%s);\n", a.field)
	case refInc:
		fmt.Fprintf(b, "  v = InterlockedIncrement(&e->%s);\n", a.field)
	case refDec:
		fmt.Fprintf(b, "  v = InterlockedDecrement(&e->%s);\n", a.field)
	}
}

// renderHard emits a hard-worker routine: its planted (lock-protected,
// race-free) accesses sit inside a nondeterministic counter loop whose
// state space exceeds the evaluation's per-field budget, reproducing the
// per-field resource-bound timeouts of Table 1. The loop counter is local,
// so runs targeting *other* fields never explore these routines (their
// harness slices them out) and stay cheap.
func (g *generator) renderHard(b *strings.Builder, name string) {
	fmt.Fprintf(b, "func %s(e) {\n", name)
	b.WriteString("  var v;\n  var c;\n")
	b.WriteString("  c = 0;\n")
	b.WriteString("  iter {\n")
	fmt.Fprintf(b, "    assume(c < %d);\n", AmplifierBound)
	b.WriteString("    c = c + 1;\n")
	b.WriteString("    KeAcquireSpinLock(&e->SpinLock);\n")
	for _, a := range g.accesses[name] {
		if a.kind == readP {
			fmt.Fprintf(b, "    v = e->%s;\n", a.field)
		} else {
			fmt.Fprintf(b, "    e->%s = c;\n", a.field)
		}
	}
	b.WriteString("    KeReleaseSpinLock(&e->SpinLock);\n")
	b.WriteString("  }\n")
	b.WriteString("  return 0;\n")
	b.WriteString("}\n\n")
}

// HarnessProgram builds the complete per-field checking program: the model
// plus a main that allocates the device extension and runs two concurrent
// dispatch invocations, one asynchronous and one synchronous, chosen
// nondeterministically among the ordered pairs of routines that access the
// target field and that the harness allows (Section 6: "we created a
// concurrent program with two threads, each of which nondeterministically
// calls a dispatch routine").
//
// Restricting the pairs to the target field's accessor routines is the
// explicit-state analogue of SLAM's property-directed abstraction: a pair
// in which one thread never accesses the field cannot drive the field's
// race monitor to a violation, so those runs are vacuous.
func (m *Model) HarnessProgram(field string, refined bool) string {
	var pairs [][2]string
	accessors := m.FieldRoutines[field]
	for _, a := range accessors {
		for _, b := range accessors {
			if PairAllowed(refined, m.RoutineCats[a], m.RoutineCats[b], m.Spec.IoctlSerialized) {
				pairs = append(pairs, [2]string{a, b})
			}
		}
	}

	var b strings.Builder
	b.WriteString(m.Text)
	b.WriteString("\nfunc main() {\n  var e;\n  e = new DEVICE_EXTENSION;\n")
	switch {
	case len(pairs) == 0:
		// No concurrently-allowed accessor pair: nothing to run.
	default:
		b.WriteString("  choice {\n")
		for i, p := range pairs {
			if i > 0 {
				b.WriteString("  []\n")
			}
			fmt.Fprintf(&b, "    { async %s(e); %s(e); }\n", p[0], p[1])
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func countLOC(text string) int {
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
