package drivers

import (
	"strings"
	"testing"
)

func TestSpecsCalibration(t *testing.T) {
	specs := Specs()
	if len(specs) != 18 {
		t.Fatalf("%d drivers, want 18", len(specs))
	}
	var kloc float64
	for _, s := range specs {
		kloc += s.KLOC
		if len(s.Fields) != s.PaperFields {
			t.Errorf("%s: %d fields, want %d", s.Name, len(s.Fields), s.PaperFields)
		}
		if s.Timeouts() < 0 {
			t.Errorf("%s: negative implied timeouts", s.Name)
		}
		seen := map[string]bool{}
		for _, f := range s.Fields {
			if seen[f.Name] {
				t.Errorf("%s: duplicate field name %s", s.Name, f.Name)
			}
			seen[f.Name] = true
		}
		if !seen["SpinLock"] {
			t.Errorf("%s: missing SpinLock field", s.Name)
		}
	}
	if kloc < 69.5 || kloc > 69.7 {
		t.Errorf("total KLOC %.1f, paper reports 69.6", kloc)
	}
}

func TestSpecialFieldNames(t *testing.T) {
	tm := FindSpec("toaster/toastmon")
	found := false
	for _, f := range tm.Fields {
		if f.Name == "DevicePnPState" && f.Pattern == FieldRace {
			found = true
		}
	}
	if !found {
		t.Error("toaster/toastmon missing the DevicePnPState race field (Figure 6)")
	}
	fm := FindSpec("fakemodem")
	found = false
	for _, f := range fm.Fields {
		if f.Name == "OpenCount" && f.Pattern == FieldBenign {
			found = true
		}
	}
	if !found {
		t.Error("fakemodem missing the OpenCount benign race field")
	}
}

func TestPairAllowedRules(t *testing.T) {
	cases := []struct {
		a, b    Category
		ser     bool
		refined bool
		want    bool
	}{
		// permissive allows everything
		{CatPnp, CatPnp, false, false, true},
		{CatPnpStartRemove, CatRead, false, false, true},
		// A1: two Pnp IRPs
		{CatPnp, CatPnp, false, true, false},
		{CatPnp, CatPnpStartRemove, false, true, false},
		// A2: anything with start/remove
		{CatPnpStartRemove, CatRead, false, true, false},
		{CatIoctl, CatPnpStartRemove, false, true, false},
		// A3: same-category Power
		{CatPowerSystem, CatPowerSystem, false, true, false},
		{CatPowerDevice, CatPowerDevice, false, true, false},
		{CatPowerSystem, CatPowerDevice, false, true, true},
		// plain Pnp with non-Pnp is fine
		{CatPnp, CatPowerDevice, false, true, true},
		{CatPnp, CatRead, false, true, true},
		// driver-specific Ioctl serialization
		{CatIoctl, CatIoctl, true, true, false},
		{CatIoctl, CatIoctl, false, true, true},
		{CatIoctl, CatRead, true, true, true},
		// ordinary pairs
		{CatRead, CatWrite, false, true, true},
		{CatCreate, CatClose, false, true, true},
	}
	for i, c := range cases {
		if got := PairAllowed(c.refined, c.a, c.b, c.ser); got != c.want {
			t.Errorf("case %d: PairAllowed(refined=%v, %v, %v, ser=%v) = %v, want %v",
				i, c.refined, c.a, c.b, c.ser, got, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := FindSpec("fdc")
	m1 := Generate(spec)
	m2 := Generate(FindSpec("fdc"))
	if m1.Text != m2.Text {
		t.Error("generation is not deterministic")
	}
}

func TestGeneratedModelContainsWinmodel(t *testing.T) {
	m := Generate(FindSpec("imca"))
	for _, fn := range []string{"KeAcquireSpinLock", "KeReleaseSpinLock", "KeSetEvent",
		"KeWaitForSingleObject", "InterlockedIncrement", "InterlockedCompareExchange"} {
		if !strings.Contains(m.Text, "func "+fn) {
			t.Errorf("model missing %s", fn)
		}
	}
	if !strings.Contains(m.Text, "record DEVICE_EXTENSION") {
		t.Error("model missing the device extension record")
	}
}

func TestHardWorkersOnlyWhenNeeded(t *testing.T) {
	noHard := Generate(FindSpec("tracedrv"))
	if strings.Contains(noHard.Text, "HardWorker") {
		t.Error("tracedrv has no hard fields but got hard workers")
	}
	withHard := Generate(FindSpec("fakemodem"))
	if !strings.Contains(withHard.Text, "func HardWorkerA") {
		t.Error("fakemodem has hard fields but no hard workers")
	}
}

func TestFieldRoutineMetadata(t *testing.T) {
	m := Generate(FindSpec("toaster/toastmon"))
	rs := m.FieldRoutines["DevicePnPState"]
	if len(rs) != 2 {
		t.Fatalf("DevicePnPState accessors: %v, want 2", rs)
	}
	joined := strings.Join(rs, ",")
	if !strings.Contains(joined, "DispatchPnp") || !strings.Contains(joined, "DispatchPowerDevice") {
		t.Errorf("DevicePnPState accessors %v, want DispatchPnp + DispatchPowerDevice (Figure 6)", rs)
	}
	if len(m.FieldRoutines["SpinLock"]) != 0 {
		t.Errorf("SpinLock should have no accessor routines, got %v", m.FieldRoutines["SpinLock"])
	}
}

func TestHarnessPairSlicing(t *testing.T) {
	m := Generate(FindSpec("moufiltr"))
	// Ioctl-only race field: permissive harness has 4 ordered pairs,
	// refined has none (Ioctls serialized on this driver).
	var ioctlField string
	for _, f := range m.Spec.Fields {
		if f.Pattern == FieldRaceIoctl {
			ioctlField = f.Name
			break
		}
	}
	if ioctlField == "" {
		t.Fatal("no ioctl race field in moufiltr")
	}
	perm := m.HarnessProgram(ioctlField, false)
	if strings.Count(perm, "async ") != 4 {
		t.Errorf("permissive harness has %d pairs, want 4:\n%s", strings.Count(perm, "async "), perm)
	}
	ref := m.HarnessProgram(ioctlField, true)
	if strings.Contains(ref, "async ") {
		t.Errorf("refined harness should have no allowed pairs:\n%s", ref)
	}
}

func TestModelLOCScalesWithKLOC(t *testing.T) {
	small := Generate(FindSpec("tracedrv")).LOC
	large := Generate(FindSpec("fdc")).LOC
	if large <= small {
		t.Errorf("fdc model (%d LOC) not larger than tracedrv (%d LOC)", large, small)
	}
}
