package drivers

// Assertion scenarios for the sequentialization ablation (KISS vs CB(K)).
// Unlike the race-target driver corpus — heap-backed DEVICE_EXTENSION
// models outside CB's scalar-globals fragment — these are small
// handshake protocols over scalar globals, distilled from the same
// driver idioms (a worker thread parked on a device flag that the
// dispatch routine flips later). Each one records the minimum context
// switches a checker needs to reach its failure, so the ablation can
// report per-K frontiers honestly.

// Scenario is one assertion-checking subject of the seq ablation.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Source is the program (assertion checking; no race target).
	Source string
	// MinSwitches is the smallest K for which CB(K) reaches the failure;
	// negative means the program is safe. Note this counts *round
	// boundaries*, not raw interleaving switches: draining forked threads
	// after main is free, and one boundary serves every thread that
	// splits across it.
	MinSwitches int
	// KissFinds records whether the KISS translation (ts bound >= forks)
	// can reach the failure. KISS dispatch nests — a dispatched thread
	// may run other pending threads to completion mid-flight and then
	// resume — but a thread interrupted at a yield can never come back,
	// so KISS misses exactly the schedules needing such resumptions.
	KissFinds bool
}

// Scenarios returns the assertion corpus, safe and buggy subjects mixed.
func Scenarios() []*Scenario {
	return []*Scenario{
		{
			// The dispatch routine completes the worker's I/O while the
			// worker is still parked: running the worker after main ends
			// suffices, which costs CB nothing (the end-of-main drain is
			// free) and is the schedule KISS was built for.
			Name: "complete-once",
			Source: `
var pendingIo;
func worker() {
  assume(pendingIo == 1);
  assert(false);
}
func main() {
  async worker();
  pendingIo = 1;
}
`,
			MinSwitches: 0,
			KissFinds:   true,
		},
		{
			// A two-step handshake (M W M W): the worker must be
			// suspended after acknowledging and resumed after main's
			// second write. KISS kills the worker at its first yield, so
			// only CB(K >= 1)-style resumption reaches the assert.
			Name: "resume-once",
			Source: `
var phase;
func worker() {
  assume(phase == 1);
  phase = 2;
  assume(phase == 3);
  assert(false);
}
func main() {
  async worker();
  phase = 1;
  assume(phase == 2);
  phase = 3;
}
`,
			MinSwitches: 1,
			KissFinds:   false,
		},
		{
			// The three-phase variant (M W M W M): main needs three
			// contexts, so two switches are the frontier — CB(1) must
			// still miss it.
			Name: "resume-twice",
			Source: `
var phase;
func worker() {
  assume(phase == 1);
  phase = 2;
  assume(phase == 3);
  phase = 4;
}
func main() {
  async worker();
  phase = 1;
  assume(phase == 2);
  phase = 3;
  assume(phase == 4);
  assert(false);
}
`,
			MinSwitches: 2,
			KissFinds:   false,
		},
		{
			// Two workers where the second runs entirely inside the
			// first's interruption: KISS's nested dispatch covers it, and
			// CB needs just the one boundary where first yields.
			Name: "two-workers",
			Source: `
var a;
var b;
func first() {
  assume(a == 1);
  a = 2;
  assume(b == 2);
  assert(false);
}
func second() {
  assume(a == 2);
  b = 1;
  assume(b == 1);
  b = 2;
}
func main() {
  async first();
  async second();
  a = 1;
}
`,
			MinSwitches: 1,
			KissFinds:   true,
		},
		{
			// Crossing resumptions: each worker must pause mid-flight and
			// resume after the *other* makes progress (M W1 W2 W1 W2).
			// Nested dispatch cannot express the crossing — the inner
			// thread would have to outlive the outer — so KISS misses it,
			// while one CB round boundary splits both workers at once.
			Name: "crossing-workers",
			Source: `
var x;
var y;
func first() {
  assume(x == 1);
  y = 1;
  assume(x == 2);
  y = 2;
}
func second() {
  assume(y == 1);
  x = 2;
  assume(y == 2);
  assert(false);
}
func main() {
  async first();
  async second();
  x = 1;
}
`,
			MinSwitches: 1,
			KissFinds:   false,
		},
		{
			// Safe: per-statement increments cannot be lost, so the bound
			// holds on every interleaving. Every checker must stay quiet.
			Name: "safe-increments",
			Source: `
var refcount;
func worker() { refcount = refcount + 1; }
func main() {
  async worker();
  async worker();
  refcount = refcount + 1;
  assert(refcount <= 3);
}
`,
			MinSwitches: -1,
			KissFinds:   false,
		},
		{
			// Safe: the atomic section writes a transient value no
			// interleaving can observe at a stable point — a trap for a
			// guessed-snapshot checker that skipped its linking check.
			Name: "safe-transient",
			Source: `
var state;
func worker() {
  atomic {
    state = 2;
    state = 1;
  }
}
func main() {
  async worker();
  assert(state != 2);
}
`,
			MinSwitches: -1,
			KissFinds:   false,
		},
	}
}
