package drivers

import "fmt"

// Category classifies a dispatch routine by the kind of IRP it handles.
// The refined harness of Section 6 constrains which categories the
// operating system sends concurrently (rules A1-A3, plus driver-specific
// rules such as serialized Ioctls for the keyboard/mouse filter drivers).
type Category int

const (
	CatCreate Category = iota
	CatClose
	CatRead
	CatWrite
	CatIoctl
	CatInternalIoctl
	CatCleanup
	CatPnp            // a plain PnP IRP
	CatPnpStartRemove // a PnP IRP that starts or removes the device
	CatPowerSystem    // a system Power IRP
	CatPowerDevice    // a device Power IRP
	CatHardWork       // synthetic heavy worker (state-space amplifier)
)

func (c Category) String() string {
	switch c {
	case CatCreate:
		return "Create"
	case CatClose:
		return "Close"
	case CatRead:
		return "Read"
	case CatWrite:
		return "Write"
	case CatIoctl:
		return "Ioctl"
	case CatInternalIoctl:
		return "InternalIoctl"
	case CatCleanup:
		return "Cleanup"
	case CatPnp:
		return "Pnp"
	case CatPnpStartRemove:
		return "PnpStartRemove"
	case CatPowerSystem:
		return "PowerSystem"
	case CatPowerDevice:
		return "PowerDevice"
	case CatHardWork:
		return "HardWork"
	}
	return "?"
}

// isPnp reports whether the category is a PnP IRP (rule A1 treats start/
// remove PnP IRPs as PnP IRPs too).
func (c Category) isPnp() bool { return c == CatPnp || c == CatPnpStartRemove }

// isPower reports whether the category is a Power IRP.
func (c Category) isPower() bool { return c == CatPowerSystem || c == CatPowerDevice }

// PairAllowed reports whether the operating system may invoke dispatch
// routines of categories a and b concurrently. The permissive harness
// (refined == false) allows every pair; the refined harness applies the
// driver quality team's rules from Section 6:
//
//	A1. Two Pnp IRPs will not be sent by the operating system concurrently.
//	A2. The operating system will not send any IRP concurrently with a Pnp
//	    IRP for starting or removing a device.
//	A3. Two Power IRPs sent concurrently must belong to different
//	    categories (system vs device).
//
// ioctlSerialized additionally encodes the driver-specific rule for
// kbfiltr and moufiltr: their position in the driver stack ensures they
// never receive two concurrent Ioctl IRPs.
func PairAllowed(refined bool, a, b Category, ioctlSerialized bool) bool {
	if !refined {
		return true
	}
	if a.isPnp() && b.isPnp() { // A1
		return false
	}
	if a == CatPnpStartRemove || b == CatPnpStartRemove { // A2
		return false
	}
	if a.isPower() && b.isPower() && a == b { // A3
		return false
	}
	if ioctlSerialized && a == CatIoctl && b == CatIoctl {
		return false
	}
	return true
}

// FieldPattern describes the synchronization discipline planted on one
// device-extension field, which determines the verdict KISS should reach.
type FieldPattern int

const (
	// FieldLock is the spin-lock word itself; only touched inside atomic
	// lock models, so no checkable access exists. Verdict: no race.
	FieldLock FieldPattern = iota
	// FieldEvent is an event cell set (atomically) by one routine and
	// awaited by another. Verdict: no race.
	FieldEvent
	// FieldRefCount is a reference count manipulated exclusively through
	// interlocked operations. Verdict: no race.
	FieldRefCount
	// FieldProtected has conflicting accesses that all hold the driver
	// spin lock. Verdict: no race.
	FieldProtected
	// FieldReadShared is only ever read. Verdict: no race.
	FieldReadShared
	// FieldRace has an unprotected write racing a read in a routine pair
	// the OS genuinely sends concurrently. Verdict: race in both the
	// permissive and the refined harness (a confirmed bug).
	FieldRace
	// FieldBenign is the fakemodem OpenCount pattern: writes under the
	// lock, plus one unprotected read used for a decision ("The read
	// operation is atomic already; ... the programmer chose to not pay
	// for the overhead of locking"). KISS reports it in both harnesses;
	// triage would classify it benign.
	FieldBenign
	// FieldRaceIoctl races only between two Ioctl dispatch routines:
	// spurious for drivers whose stack position serializes Ioctls.
	FieldRaceIoctl
	// FieldRacePnp races only between two plain-PnP routines: spurious by
	// rule A1.
	FieldRacePnp
	// FieldRaceStartRemove races only between the start/remove-PnP routine
	// and a normal routine: spurious by rule A2.
	FieldRaceStartRemove
	// FieldRacePowerSame races only between two same-category Power
	// routines: spurious by rule A3.
	FieldRacePowerSame
	// FieldHard is race-free but deliberately expensive to verify: its
	// accessor routines contain a nondeterministic-counter loop that
	// exceeds the per-field resource bound, reproducing the Table 1
	// timeout columns.
	FieldHard
)

func (p FieldPattern) String() string {
	switch p {
	case FieldLock:
		return "lock"
	case FieldEvent:
		return "event"
	case FieldRefCount:
		return "refcount"
	case FieldProtected:
		return "protected"
	case FieldReadShared:
		return "read-shared"
	case FieldRace:
		return "race"
	case FieldBenign:
		return "benign-race"
	case FieldRaceIoctl:
		return "race-ioctl-only"
	case FieldRacePnp:
		return "race-pnp-only"
	case FieldRaceStartRemove:
		return "race-startremove-only"
	case FieldRacePowerSame:
		return "race-power-same"
	case FieldHard:
		return "hard"
	}
	return "?"
}

// RacesPermissive reports whether KISS should report a race on a field of
// this pattern under the permissive harness.
func (p FieldPattern) RacesPermissive() bool {
	switch p {
	case FieldRace, FieldBenign, FieldRaceIoctl, FieldRacePnp,
		FieldRaceStartRemove, FieldRacePowerSame:
		return true
	}
	return false
}

// RacesRefined reports whether KISS should report a race on a field of
// this pattern under the refined harness; ioctlSerialized is the
// driver-specific rule flag.
func (p FieldPattern) RacesRefined(ioctlSerialized bool) bool {
	switch p {
	case FieldRace, FieldBenign:
		return true
	case FieldRaceIoctl:
		return !ioctlSerialized
	}
	return false
}

// TimesOut reports whether the field is designed to exceed the per-field
// resource bound.
func (p FieldPattern) TimesOut() bool { return p == FieldHard }

// FieldSpec is one planted device-extension field.
type FieldSpec struct {
	Name    string
	Pattern FieldPattern
}

// DriverSpec describes one synthetic driver of the corpus, calibrated to a
// row of Table 1 / Table 2.
type DriverSpec struct {
	Name string
	// KLOC is the size of the real driver as reported in Table 1 (the
	// proprietary C source we cannot ship); the generated model's own size
	// is reported separately by the evaluation.
	KLOC float64
	// Table 1 row: total extension fields, fields with a reported race
	// under the permissive harness, and fields verified race-free within
	// the resource bound. Fields-Races-NoRace fields hit the bound.
	PaperFields, PaperRaces, PaperNoRace int
	// PaperRacesRefined is the Table 2 row (races remaining under the
	// refined harness), or -1 for drivers absent from Table 2.
	PaperRacesRefined int
	// IoctlSerialized is the driver-specific rule of kbfiltr/moufiltr.
	IoctlSerialized bool
	// Fields is the planted field list; its verdict pattern counts match
	// the paper rows by construction (validated by TestSpecsMatchPaper).
	Fields []FieldSpec
}

// Timeouts returns the number of fields expected to exceed the resource
// bound (Table 1: Fields - Races - NoRace).
func (d *DriverSpec) Timeouts() int {
	return d.PaperFields - d.PaperRaces - d.PaperNoRace
}

// buildFields assembles the planted field list for a driver from the
// per-mechanism spurious counts and the paper's row. realRaces is the
// Table 2 count; spurious mechanism counts must sum to
// PaperRaces - realRaces.
type fieldPlan struct {
	realRaces     int // FieldRace (first may be specialized by name)
	benign        int // FieldBenign (counted among real races)
	spuriousIoctl int
	spuriousPnp   int
	spuriousSR    int
	spuriousPower int
	hard          int
}

func (d *DriverSpec) build(plan fieldPlan, names *nameAllocator) {
	add := func(pattern FieldPattern, n int) {
		for i := 0; i < n; i++ {
			d.Fields = append(d.Fields, FieldSpec{Name: names.next(pattern), Pattern: pattern})
		}
	}
	add(FieldRace, plan.realRaces)
	add(FieldBenign, plan.benign)
	add(FieldRaceIoctl, plan.spuriousIoctl)
	add(FieldRacePnp, plan.spuriousPnp)
	add(FieldRaceStartRemove, plan.spuriousSR)
	add(FieldRacePowerSame, plan.spuriousPower)
	add(FieldHard, plan.hard)

	// The remainder are race-free fields: one lock word (always), one
	// event and one interlocked refcount when room permits, then a
	// rotation of protected and read-shared fields.
	noRace := d.PaperFields - len(d.Fields)
	if noRace < 1 {
		panic(fmt.Sprintf("driver %s: field plan overflows the paper's field count", d.Name))
	}
	d.Fields = append(d.Fields, FieldSpec{Name: "SpinLock", Pattern: FieldLock})
	noRace--
	if noRace > 0 {
		d.Fields = append(d.Fields, FieldSpec{Name: "StopEvent", Pattern: FieldEvent})
		noRace--
	}
	if noRace > 0 {
		d.Fields = append(d.Fields, FieldSpec{Name: "RefCount", Pattern: FieldRefCount})
		noRace--
	}
	for i := 0; i < noRace; i++ {
		p := FieldProtected
		if i%3 == 2 {
			p = FieldReadShared
		}
		d.Fields = append(d.Fields, FieldSpec{Name: names.next(p), Pattern: p})
	}
}

// Specs returns the full 18-driver corpus, calibrated to Tables 1 and 2.
func Specs() []*DriverSpec {
	type row struct {
		name                  string
		kloc                  float64
		fields, races, noRace int
		racesRefined          int // -1 if absent from Table 2
		ioctlSerialized       bool
		plan                  fieldPlan
	}
	rows := []row{
		{"tracedrv", 0.5, 3, 0, 3, -1, false, fieldPlan{}},
		{"moufiltr", 1.0, 14, 7, 7, 0, true, fieldPlan{spuriousIoctl: 7}},
		{"kbfiltr", 1.1, 15, 8, 7, 0, true, fieldPlan{spuriousIoctl: 8}},
		{"imca", 1.1, 5, 1, 4, 1, false, fieldPlan{realRaces: 1}},
		{"startio", 1.1, 9, 0, 9, -1, false, fieldPlan{}},
		{"toaster/toastmon", 1.4, 8, 1, 7, 1, false, fieldPlan{realRaces: 1}},
		{"diskperf", 2.4, 16, 2, 14, 0, false, fieldPlan{spuriousPnp: 1, spuriousPower: 1}},
		{"1394diag", 2.7, 18, 1, 17, 1, false, fieldPlan{realRaces: 1}},
		{"1394vdev", 2.8, 18, 1, 17, 1, false, fieldPlan{realRaces: 1}},
		{"fakemodem", 2.9, 39, 6, 31, 6, false, fieldPlan{realRaces: 5, benign: 1, hard: 2}},
		{"gameenum", 3.9, 45, 11, 24, 1, false, fieldPlan{realRaces: 1, spuriousPnp: 4, spuriousSR: 3, spuriousPower: 3, hard: 10}},
		{"toaster/bus", 5.0, 30, 0, 22, -1, false, fieldPlan{hard: 8}},
		{"serenum", 5.9, 41, 5, 21, 2, false, fieldPlan{realRaces: 2, spuriousPnp: 1, spuriousSR: 1, spuriousPower: 1, hard: 15}},
		{"toaster/func", 6.6, 24, 7, 17, 5, false, fieldPlan{realRaces: 5, spuriousPnp: 1, spuriousSR: 1}},
		{"mouclass", 7.0, 34, 1, 32, 1, false, fieldPlan{realRaces: 1, hard: 1}},
		{"kbdclass", 7.4, 36, 1, 33, 1, false, fieldPlan{realRaces: 1, hard: 2}},
		{"mouser", 7.6, 34, 1, 27, 1, false, fieldPlan{realRaces: 1, hard: 6}},
		{"fdc", 9.2, 92, 18, 54, 9, false, fieldPlan{realRaces: 9, spuriousPnp: 3, spuriousSR: 3, spuriousPower: 3, hard: 20}},
	}

	var specs []*DriverSpec
	for _, r := range rows {
		d := &DriverSpec{
			Name:              r.name,
			KLOC:              r.kloc,
			PaperFields:       r.fields,
			PaperRaces:        r.races,
			PaperNoRace:       r.noRace,
			PaperRacesRefined: r.racesRefined,
			IoctlSerialized:   r.ioctlSerialized,
		}
		names := newNameAllocator(r.name)
		d.build(r.plan, names)
		specs = append(specs, d)
	}
	return specs
}

// FindSpec returns the spec with the given name, or nil.
func FindSpec(name string) *DriverSpec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
