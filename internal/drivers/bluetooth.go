// Package drivers contains the device-driver models of the KISS
// evaluation: the hand-written Bluetooth model of Figure 2 (verbatim,
// buggy and fixed), the fakemodem reference-counting model, and the
// synthetic corpus standing in for the 18 Windows DDK drivers of Table 1
// (see corpus.go and generator.go; the substitution is documented in
// DESIGN.md).
package drivers

// BluetoothSource is the simplified model of the Windows NT Bluetooth
// driver, transcribed from Figure 2 of the paper. The device extension has
// a pendingIo count of threads executing in the driver (initialized to 1),
// a stoppingFlag set by the stopping thread, and a stoppingEvent that
// fires when pendingIo reaches 0. The global `stopped` encodes the safety
// property: a worker asserts !stopped before doing work.
//
// Two distinct bugs live here, exactly as in Sections 2.2 and 2.3:
//
//   - a race condition on stoppingFlag (written by BCSP_PnpStop without
//     synchronization, read by BCSP_IoIncrement), exposed with ts bound 0;
//   - an assertion violation caused by the check-then-increment window in
//     BCSP_IoIncrement, exposed only with ts bound 1.
const BluetoothSource = `
record DEVICE_EXTENSION {
  pendingIo;
  stoppingFlag;
  stoppingEvent;
}

var stopped;

func main() {
  var e;
  e = new DEVICE_EXTENSION;
  e->pendingIo = 1;
  e->stoppingFlag = false;
  e->stoppingEvent = false;
  stopped = false;
  async BCSP_PnpStop(e);
  BCSP_PnpAdd(e);
}

func BCSP_PnpAdd(e) {
  var status;
  status = BCSP_IoIncrement(e);
  if (status == 0) {
    // do work here
    assert(!stopped);
  }
  BCSP_IoDecrement(e);
}

func BCSP_PnpStop(e) {
  e->stoppingFlag = true;
  BCSP_IoDecrement(e);
  assume(e->stoppingEvent);
  // release allocated resources
  stopped = true;
}

func BCSP_IoIncrement(e) {
  if (e->stoppingFlag) {
    return -1;
  }
  atomic {
    e->pendingIo = e->pendingIo + 1;
  }
  return 0;
}

func BCSP_IoDecrement(e) {
  var pendingIo;
  atomic {
    e->pendingIo = e->pendingIo - 1;
    pendingIo = e->pendingIo;
  }
  if (pendingIo == 0) {
    e->stoppingEvent = true;
  }
}
`

// BluetoothFixedSource is the driver after the fix suggested by the driver
// quality team (Section 6): BCSP_IoIncrement increments pendingIo *before*
// checking stoppingFlag, and backs the increment out if the driver is
// stopping — closing the window in which the stopping thread can observe
// pendingIo == 0 while a worker is still entering. Rerunning KISS on the
// fixed driver reports no errors, as in the paper.
const BluetoothFixedSource = `
record DEVICE_EXTENSION {
  pendingIo;
  stoppingFlag;
  stoppingEvent;
}

var stopped;

func main() {
  var e;
  e = new DEVICE_EXTENSION;
  e->pendingIo = 1;
  e->stoppingFlag = false;
  e->stoppingEvent = false;
  stopped = false;
  async BCSP_PnpStop(e);
  BCSP_PnpAdd(e);
}

func BCSP_PnpAdd(e) {
  var status;
  status = BCSP_IoIncrement(e);
  if (status == 0) {
    // do work here
    assert(!stopped);
  }
  BCSP_IoDecrement(e);
}

func BCSP_PnpStop(e) {
  e->stoppingFlag = true;
  BCSP_IoDecrement(e);
  assume(e->stoppingEvent);
  // release allocated resources
  stopped = true;
}

func BCSP_IoIncrement(e) {
  atomic {
    e->pendingIo = e->pendingIo + 1;
  }
  if (e->stoppingFlag) {
    BCSP_IoDecrement(e);
    return -1;
  }
  return 0;
}

func BCSP_IoDecrement(e) {
  var pendingIo;
  atomic {
    e->pendingIo = e->pendingIo - 1;
    pendingIo = e->pendingIo;
  }
  if (pendingIo == 0) {
    e->stoppingEvent = true;
  }
}
`
