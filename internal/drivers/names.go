package drivers

import "fmt"

// namePool supplies plausible device-extension field names; when exhausted
// the allocator falls back to numbered names. Names that carry meaning in
// the paper's discussion (DevicePnPState for toaster/toastmon, OpenCount
// for fakemodem) are assigned specially by the allocator.
var namePool = []string{
	"Flags", "PowerState", "DeviceState", "PendingIoCount", "Removing",
	"StartedFlag", "QueueHead", "QueueTail", "ByteCount", "ReadIndex",
	"WriteIndex", "ErrorCount", "RetryCount", "TimeoutValue", "ModemStatus",
	"LineControl", "BaudRate", "FifoDepth", "InterruptCount", "DmaLength",
	"SymbolicLinkState", "ConfigData", "HwRevision", "PortBase",
	"VectorBase", "IrqLevel", "DpcCount", "IsrCount", "MediaType",
	"SectorSize", "CylinderCount", "HeadCount", "MotorOn", "DriveSelect",
	"TransferMode", "ControllerState", "RequestCount", "CancelFlag",
	"CleanupFlag", "WaitMask", "EventMask", "RxBufferSize", "TxBufferSize",
	"HoldingReg", "DivisorLatch", "ScratchReg", "AcpiState", "WakeEnable",
	"IdleCounter", "PowerIrpCount", "SystemState", "ReferenceState",
	"SessionCount", "LinkSpeed", "NodeAddress", "GenerationCount",
	"BusNumber", "SlotNumber", "Caps", "AlignMask", "MaxTransfer",
	"BufferedData", "StackSize", "AttachedDevice", "FilterState",
	"KeyCount", "LedState", "SampleRate", "ResolutionX", "ResolutionY",
	"WheelDelta", "ButtonMask", "ScanCodeMode", "TypematicRate",
	"TypematicDelay", "InputCount", "OutputCount", "OverrunCount",
	"FrameErrors", "ParityErrors", "BreakCount", "XonLimit", "XoffLimit",
	"FlowControl", "HandshakeState", "EscapeChar", "EventChar",
	"PerfCounterLo", "PerfCounterHi", "QueryCount", "IdleState",
	"BusRelationsCount", "EjectPending", "SurpriseRemoved", "D3ColdEnable",
}

// nameAllocator hands out unique field names for one driver.
type nameAllocator struct {
	driver string
	idx    int
	seq    int
	used   map[string]bool
	// special names, assigned to the first field of a matching pattern
	specialRace   string // first FieldRace name
	specialBenign string // first FieldBenign name
}

func newNameAllocator(driver string) *nameAllocator {
	na := &nameAllocator{driver: driver, used: map[string]bool{
		"SpinLock": true, "StopEvent": true, "RefCount": true,
	}}
	switch driver {
	case "toaster/toastmon":
		// Figure 6: the confirmed read/write race on DevicePnPState.
		na.specialRace = "DevicePnPState"
	case "fakemodem":
		// Section 6: the benign race on OpenCount.
		na.specialBenign = "OpenCount"
	}
	return na
}

func (na *nameAllocator) next(p FieldPattern) string {
	if p == FieldRace && na.specialRace != "" {
		n := na.specialRace
		na.specialRace = ""
		na.used[n] = true
		return n
	}
	if p == FieldBenign && na.specialBenign != "" {
		n := na.specialBenign
		na.specialBenign = ""
		na.used[n] = true
		return n
	}
	for na.idx < len(namePool) {
		n := namePool[na.idx]
		na.idx++
		if !na.used[n] {
			na.used[n] = true
			return n
		}
	}
	na.seq++
	return fmt.Sprintf("Field%02d", na.seq)
}
