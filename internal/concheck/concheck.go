// Package concheck is an explicit-state model checker for *concurrent*
// programs in the parallel language: it explores thread interleavings
// directly, in the style of the model checkers the KISS paper contrasts
// with (SPIN, JPF, Bogor). Its state space grows exponentially with the
// number of threads — which is exactly the blowup KISS avoids, and which
// the blowup benchmark quantifies.
//
// The checker serves three roles in this reproduction:
//
//  1. Ground truth on small programs: the unsoundness characterization
//     (Theorem 1) and the no-false-errors property are tested by comparing
//     its verdicts against the KISS pipeline's.
//  2. Context-bounded exploration: with ContextBound set it explores only
//     executions with at most that many context switches, matching the
//     paper's observation that for a 2-threaded program the transformed
//     sequential program covers all executions with at most two context
//     switches.
//  3. The baseline in the interleaving-blowup study.
package concheck

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/stats"
)

// Verdict is the outcome of a check.
type Verdict int

const (
	// Safe: all reachable states (within the context bound, if any) were
	// explored without failure.
	Safe Verdict = iota
	// Error: some interleaving fails an assertion or goes wrong.
	Error
	// ResourceBound: a search budget was exhausted first.
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Options configure the search. Zero values mean "unlimited" except
// ContextBound, where a negative value means unlimited and 0 means "no
// context switches" (each thread runs to completion or blocks before
// another is scheduled... note that a blocked thread forces a switch,
// which still counts against the bound).
type Options struct {
	MaxStates    int
	MaxSteps     int
	MaxDepth     int
	ContextBound int // < 0: unlimited
	// POR enables a simple sound partial-order reduction ("the model
	// checkers [SPIN, JPF, Bandera, Bogor] exploit partial-order reduction
	// techniques to reduce the number of explored interleavings" —
	// Section 7): when some thread's next instruction is invisible (it
	// reads and writes only that thread's locals and control state), only
	// that thread is expanded, since the instruction commutes with every
	// transition of every other thread. Failure reachability is preserved;
	// the Deadlocks diagnostic and ContextBound accounting are not
	// meaningful under POR and should not be combined with it.
	POR bool
	// SearchWorkers >= 1 explores interleavings with a worker pool over a
	// level-synchronized breadth-first frontier and a sharded visited set
	// (see seqcheck.Options.SearchWorkers — the design is shared). The
	// verdict, counterexample trace, and deterministic search metrics are
	// bit-identical at every worker count; 1 runs the same search on the
	// calling goroutine; 0 (the default) keeps the classic depth-first
	// sequential search. AuditFingerprints forces the sequential search.
	SearchWorkers int
	// NumShards is the visited-set shard count for the parallel search
	// (rounded up to a power of two; 0 selects visited.DefaultShards).
	NumShards int
	// FrontierBudget, when > 0, bounds the BFS frontier's resident bytes
	// by spilling frames to sorted on-disk runs under SpillDir; see
	// seqcheck.Options.FrontierBudget — the contract is shared (spilling
	// never changes the verdict, trace, or any deterministic counter).
	// Ignored by the DFS engines.
	FrontierBudget int64
	// SpillDir is where frontier runs are created (empty selects the
	// system temp directory).
	SpillDir string
	// VisitedCompact replaces the exact visited set with a blocked Bloom
	// filter; see seqcheck.Options.VisitedCompact (same unsoundness
	// direction: missed states, never false alarms). Honored by the macro
	// engines and the parallel per-statement engine; the classic
	// per-statement sequential search keeps the exact set.
	VisitedCompact bool
	// VisitedBytes sizes the compact filter (<= 0 selects
	// visited.DefaultCompactBytes).
	VisitedBytes int64
	// AuditVisited shadows the compact filter with an exact set and
	// counts real false positives in the Memory stats; ignored unless
	// VisitedCompact.
	AuditVisited bool
	// DisableMacroSteps turns off macro-step compression (sem.MacroStep),
	// restoring the per-statement search. Compression is on by default:
	// whenever a thread is the sole live thread of a state, its maximal
	// deterministic run folds into one transition and only decision-point
	// states are stored (multi-threaded states are scheduling points and
	// never fold, so interleaving coverage is untouched). The verdict,
	// failure position, and counterexample trace are identical either way;
	// States counts only stored states (compare with StatesStepped), and
	// the Deadlocks diagnostic no longer counts the infeasible
	// false-assume branch endpoints that compression prunes without
	// storing. AuditFingerprints forces compression off.
	DisableMacroSteps bool
	// Memo, when non-nil, is the fold-memoization table shared by every
	// engine of this search (sem.MacroStepMemo); see
	// seqcheck.Options.Memo. Ignored when macro steps are disabled.
	Memo *sem.FoldMemo
	// Summaries, when non-nil, is the call-grained procedure-summary table
	// shared by every engine of this search (sem.MacroStepMemoSum); see
	// seqcheck.Options.Summaries. Ignored when macro steps are disabled.
	Summaries *sem.SummaryTable
	// AuditFingerprints cross-checks the 64-bit visited-set hashes against
	// the canonical string encodings (see seqcheck.Options); collisions are
	// counted in Result.HashCollisions.
	AuditFingerprints bool
	// Context, when non-nil, is polled during the search; cancellation or
	// deadline expiry stops it with a ResourceBound verdict and Reason
	// ReasonCanceled/ReasonDeadline (a partial result, not an error).
	Context context.Context
	// Collector, when non-nil, receives per-iteration progress samples.
	Collector *stats.Collector
}

// ctxPollStride amortizes ctx.Err's mutex over the hot loop; the first
// poll happens on the first iteration.
const ctxPollStride = 512

// Result reports the verdict, witness trace, and statistics.
type Result struct {
	Verdict Verdict
	Failure *sem.Failure
	Trace   []sem.Event
	States  int
	Steps   int
	// StatesStepped counts the states the search traversed, including the
	// intermediate states of folded deterministic runs that macro-step
	// compression never stored (see seqcheck.Result.StatesStepped; the
	// per-statement engines leave it at zero, meaning "equal to States").
	StatesStepped int
	// Reason names which bound ended the search (ResourceBound verdicts).
	Reason stats.Reason
	// Visited is the final visited-set size; PeakFrontier and PeakDepth
	// are the frontier-length and trace-depth high-water marks.
	Visited      int
	PeakFrontier int
	PeakDepth    int
	// Deadlocks counts states in which some thread was still running but
	// every live thread was blocked on an assume. A deadlock is not an
	// error in the paper's semantics (a false assume simply blocks), but
	// the count is reported for diagnostics.
	Deadlocks int
	// HashCollisions counts states whose 64-bit fingerprint collided with
	// a structurally different visited state (AuditFingerprints only).
	HashCollisions int
	// Parallel carries the worker-pool diagnostics of a parallel search
	// (SearchWorkers >= 1); nil for sequential runs.
	Parallel *stats.Parallel
	// Memory carries the memory-bounding diagnostics (compact-filter
	// occupancy, spilled bytes/runs/merges); nil when neither
	// FrontierBudget nor VisitedCompact engaged.
	Memory *stats.Memory
}

func (r *Result) String() string {
	counters := fmt.Sprintf("states=%d steps=%d visited=%d peak-frontier=%d",
		r.States, r.Steps, r.Visited, r.PeakFrontier)
	if r.StatesStepped > 0 {
		counters += fmt.Sprintf(" stepped=%d", r.StatesStepped)
	}
	switch r.Verdict {
	case Error:
		return fmt.Sprintf("error: %s (%s)", r.Failure, counters)
	case Safe:
		return fmt.Sprintf("safe (%s)", counters)
	default:
		return fmt.Sprintf("resource bound exhausted (%s; %s)",
			stats.BoundName(r.Reason), counters)
	}
}

// reasonFor maps a context error to the bound reason it represents.
func reasonFor(err error) stats.Reason {
	if errors.Is(err, context.DeadlineExceeded) {
		return stats.ReasonDeadline
	}
	return stats.ReasonCanceled
}

// node is one stored state's position in the trace tree. Under macro-step
// compression an edge covers a whole deterministic run of thread ti:
// prefix holds the folded events preceding event, prefixIdx the raw
// successor index taken at each folded position, and idx the raw index of
// the final edge — together with ti they spell this state's padded
// (thread, successor)-path, the per-statement BFS's within-level ordering
// key (see pathKey). depth is the micro depth: parent.depth +
// len(prefix) + 1.
//
// A node restored from a spilled frontier frame has no parent chain:
// base holds its full padded path of pathEntry-packed (thread, index)
// pairs instead (the spill key), which cAppendNodePath counts toward
// descendants' order keys and cReplayPath turns back into the trace
// prefix on failure.
type node struct {
	parent    *node
	prefix    []sem.Event
	prefixIdx []int32
	event     sem.Event
	idx       int32
	ti        int32
	depth     int
	base      []int32
}

func (n *node) trace() []sem.Event {
	total := 0
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		total += len(cur.prefix) + 1
	}
	out := make([]sem.Event, total)
	i := total
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		i--
		out[i] = cur.event
		for j := len(cur.prefix) - 1; j >= 0; j-- {
			i--
			out[i] = cur.prefix[j]
		}
	}
	return out
}

type searchState struct {
	st       *sem.State
	nd       *node
	lastTh   int // index of last-scheduled thread (-1 initially)
	switches int // context switches consumed
}

// Check explores the concurrent program compiled in c.
func Check(c *sem.Compiled, opts Options) *Result {
	if opts.AuditFingerprints {
		// The audit maps shadow the per-statement search's visited inserts
		// one-for-one; compression stores a different (smaller) state set.
		opts.DisableMacroSteps = true
	}
	if opts.SearchWorkers >= 1 && !opts.AuditFingerprints {
		if !opts.DisableMacroSteps {
			return checkMacroLevel(c, opts)
		}
		return checkParallel(c, opts)
	}
	if !opts.DisableMacroSteps {
		return checkMacroSeq(c, opts)
	}
	res := &Result{}
	init := sem.NewState(c)
	bounded := opts.ContextBound >= 0

	hasher := sem.NewFPHasher()
	visited := map[uint64]struct{}{}
	var audit map[uint64]string // hash key -> canonical string key
	if opts.AuditFingerprints {
		audit = map[uint64]string{}
	}
	// seen records (state, search context) as visited, reporting whether it
	// already was. In bounded mode the last-scheduled thread and consumed
	// switch count are part of the key, mixed into the state hash.
	seen := func(s *sem.State, lastTh, switches int) bool {
		fp := hasher.Hash(s)
		if bounded {
			fp = sem.Mix64(fp, uint64(lastTh+1))
			fp = sem.Mix64(fp, uint64(switches))
		}
		if _, ok := visited[fp]; ok {
			if audit != nil {
				sk := s.FingerprintString()
				if bounded {
					sk = fmt.Sprintf("%s#%d#%d", sk, lastTh, switches)
				}
				if audit[fp] != sk {
					res.HashCollisions++
				}
			}
			return true
		}
		visited[fp] = struct{}{}
		if audit != nil {
			sk := s.FingerprintString()
			if bounded {
				sk = fmt.Sprintf("%s#%d#%d", sk, lastTh, switches)
			}
			audit[fp] = sk
		}
		return false
	}
	seen(init, -1, 0)
	res.States = 1

	stack := []searchState{{st: init, nd: &node{}, lastTh: -1}}
	res.PeakFrontier = 1
	defer func() { res.Visited = len(visited) }()

	ctxCountdown := 1 // poll the context on the first iteration
	for len(stack) > 0 {
		if opts.Context != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxPollStride
				if err := opts.Context.Err(); err != nil {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(err)
					return res
				}
			}
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.nd.depth > res.PeakDepth {
			res.PeakDepth = cur.nd.depth
		}
		opts.Collector.Sample(res.States, res.Steps, len(stack), cur.nd.depth, len(visited))

		if opts.MaxDepth > 0 && cur.nd.depth >= opts.MaxDepth {
			continue
		}

		// POR: if some live thread's next instruction is invisible, expand
		// only that thread.
		expand := -1
		if opts.POR {
			for ti := range cur.st.Threads {
				if cur.st.Threads[ti].Done() {
					continue
				}
				if invisibleNext(cur.st, ti) {
					expand = ti
					break
				}
			}
		}

		anyLive, anyProgress := false, false
		for ti := range cur.st.Threads {
			if cur.st.Threads[ti].Done() {
				continue
			}
			if expand >= 0 && ti != expand {
				continue
			}
			anyLive = true

			// A context switch occurs whenever adjacent transitions in the
			// execution string are labeled with different thread ids
			// (Section 4.1's formal model).
			switches := cur.switches
			if cur.lastTh >= 0 && cur.lastTh != ti {
				switches++
				if bounded && switches > opts.ContextBound {
					continue
				}
			}

			if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
				res.Verdict = ResourceBound
				res.Reason = stats.ReasonSteps
				return res
			}
			sr := sem.Step(cur.st, ti)
			res.Steps++
			if sr.Failure != nil {
				res.Verdict = Error
				res.Failure = sr.Failure
				failEv := sem.Event{
					Kind:     sem.EvStmt,
					ThreadID: sr.Failure.ThreadID,
					Pos:      sr.Failure.Pos,
					Text:     sr.Failure.Msg,
				}
				res.Trace = append(cur.nd.trace(), failEv)
				return res
			}
			if sr.Blocked {
				continue
			}
			anyProgress = anyProgress || len(sr.Outcomes) > 0
			for _, out := range sr.Outcomes {
				if seen(out.State, ti, switches) {
					continue
				}
				res.States++
				if opts.MaxStates > 0 && res.States > opts.MaxStates {
					res.Verdict = ResourceBound
					res.Reason = stats.ReasonStates
					return res
				}
				stack = append(stack, searchState{
					st:       out.State,
					nd:       &node{parent: cur.nd, event: out.Event, depth: cur.nd.depth + 1},
					lastTh:   ti,
					switches: switches,
				})
				if len(stack) > res.PeakFrontier {
					res.PeakFrontier = len(stack)
				}
			}
		}
		if anyLive && !anyProgress {
			res.Deadlocks++
		}
	}
	res.Verdict = Safe
	return res
}

// invisibleNext reports whether thread ti's next instruction neither
// reads nor writes shared state: pure control transfers, and assignments
// whose target and operands are all frame-local. Such an instruction
// commutes with every transition of every other thread, so expanding only
// it preserves failure reachability.
func invisibleNext(s *sem.State, ti int) bool {
	fr := s.Threads[ti].Top()
	if fr == nil || fr.PC >= len(fr.CF.Code) {
		return false // implicit return delivers into the caller frame; keep simple
	}
	in := &fr.CF.Code[fr.PC]
	switch in.Op {
	case sem.OpSkip, sem.OpJump, sem.OpNondetJump:
		return true
	case sem.OpAssign:
		return localExpr(fr, in.Lhs) && localExpr(fr, in.Rhs)
	}
	return false
}

// localExpr reports whether evaluating e touches only the frame's locals
// and constants (no globals, no heap, no pointers).
func localExpr(fr *sem.Frame, e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit:
		return true
	case *ast.VarExpr:
		_, isLocal := fr.CF.VarIdx[e.Name]
		return isLocal
	case *ast.UnaryExpr:
		return localExpr(fr, e.X)
	case *ast.BinaryExpr:
		return localExpr(fr, e.X) && localExpr(fr, e.Y)
	}
	return false
}
