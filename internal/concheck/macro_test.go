package concheck

import (
	"reflect"
	"testing"

	"repro/internal/randprog"
)

// TestMacroDifferential: on fully explored two-threaded random programs,
// macro-step compression on and off produce the same verdict, failure,
// and counterexample trace at SearchWorkers 0, 1, and 8, in both
// unbounded and context-bounded modes. Deadlocks is deliberately not
// compared: pruning drops infeasible sole-live branch endpoints that the
// per-statement search counts as blocked states (see the
// DisableMacroSteps doc), and stored-state counters may only shrink.
func TestMacroDifferential(t *testing.T) {
	var onStates, offStates, errors int
	for seed := int64(0); seed < 25; seed++ {
		src := randprog.GenerateTwoThreaded(seed, randprog.Default)
		for _, bound := range []int{-1, 2} {
			for _, w := range []int{0, 1, 8} {
				base := Options{ContextBound: bound, SearchWorkers: w, MaxStates: 200000}
				offOpts := base
				offOpts.DisableMacroSteps = true
				off := Check(compile(t, src), offOpts)
				on := Check(compile(t, src), base)
				if off.Verdict == ResourceBound || on.Verdict == ResourceBound {
					continue
				}
				if on.Verdict != off.Verdict {
					t.Errorf("seed %d bound %d workers %d: verdict on=%v off=%v\n%s",
						seed, bound, w, on.Verdict, off.Verdict, src)
					continue
				}
				if !reflect.DeepEqual(on.Failure, off.Failure) {
					t.Errorf("seed %d bound %d workers %d: failure diverged:\n on  %v\n off %v",
						seed, bound, w, on.Failure, off.Failure)
				}
				if !reflect.DeepEqual(on.Trace, off.Trace) {
					t.Errorf("seed %d bound %d workers %d: trace diverged (%d vs %d events):\n on  %v\n off %v",
						seed, bound, w, len(on.Trace), len(off.Trace), on.Trace, off.Trace)
				}
				if on.States > off.States {
					t.Errorf("seed %d bound %d workers %d: compression stored more states (%d) than per-statement (%d)",
						seed, bound, w, on.States, off.States)
				}
				if on.Verdict == Error {
					errors++
				}
				onStates += on.States
				offStates += off.States
			}
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; trace agreement vacuous")
	}
	if onStates >= offStates {
		t.Errorf("compression never reduced stored states: on=%d off=%d", onStates, offStates)
	}
}

// TestMacroIdenticalAcrossWorkerCounts: the compressed interleaving
// search keeps the parallel determinism contract — the whole Result is
// bit-identical at worker counts 1, 2, and 8.
func TestMacroIdenticalAcrossWorkerCounts(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := randprog.GenerateTwoThreaded(seed, randprog.Default)
		for _, bound := range []int{-1, 2} {
			var base Result
			for _, w := range []int{1, 2, 8} {
				got := stripParallel(Check(compile(t, src), Options{ContextBound: bound, SearchWorkers: w}))
				if w == 1 {
					base = got
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("seed %d bound %d: workers=1 vs workers=%d:\n  %+v\n  %+v",
						seed, bound, w, base, got)
				}
			}
		}
	}
}
