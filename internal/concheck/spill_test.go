package concheck

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/randprog"
)

// stripMemory drops the memory diagnostics — present only when spilling
// or the compact visited set is on, and therefore necessarily different
// between a spilled arm and a resident arm of the same search.
func stripMemory(r Result) Result {
	r.Memory = nil
	return r
}

// TestSpillIdenticalToResident: the disk-spilling frontier is eviction
// only. With a budget tiny enough to spill every level, the whole
// Result is bit-identical to the fully resident search for both
// interleaving BFS engines, across scheduling shapes (unbounded,
// context-bounded, POR) and across budget trips mid-level.
func TestSpillIdenticalToResident(t *testing.T) {
	engines := []Options{
		{ContextBound: -1, SearchWorkers: 1},
		{ContextBound: -1, SearchWorkers: 8},
		{ContextBound: 2, SearchWorkers: 8},
		{ContextBound: -1, POR: true, SearchWorkers: 8},
		{ContextBound: -1, SearchWorkers: 1, DisableMacroSteps: true},
		{ContextBound: -1, SearchWorkers: 8, DisableMacroSteps: true},
		{ContextBound: -1, SearchWorkers: 8, MaxStates: 150},
		{ContextBound: 2, SearchWorkers: 8, MaxSteps: 300, DisableMacroSteps: true},
	}
	var spilled int64
	errors := 0
	for seed := int64(0); seed < 10; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for ei, eng := range engines {
			resident := stripMemory(stripParallel(Check(compile(t, src), eng)))
			on := eng
			on.FrontierBudget = 2048
			on.SpillDir = t.TempDir()
			got := Check(compile(t, src), on)
			if got.Memory != nil {
				spilled += got.Memory.SpilledFrames
			}
			if spilledRes := stripMemory(stripParallel(got)); !reflect.DeepEqual(resident, spilledRes) {
				t.Errorf("seed %d engine %d: resident vs spilled:\n  %+v\n  %+v",
					seed, ei, resident, spilledRes)
			}
			if resident.Verdict == Error {
				errors++
			}
		}
	}
	if spilled == 0 {
		t.Error("no frames ever spilled; identity vacuous")
	}
	if errors == 0 {
		t.Error("no erroring programs; trace identity vacuous")
	}
}

// TestPathKeyEncodingMatchesSpec: bytes.Compare on the frontier's key
// encoding is exactly cPathLess on pathEntry-packed (thread, index)
// slices — including the shorter-prefix-first tiebreak.
func TestPathKeyEncodingMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randPath := func() []int32 {
		p := make([]int32, rng.Intn(6))
		for i := range p {
			p[i] = pathEntry(int32(rng.Intn(8)), int32(rng.Intn(1<<12)))
		}
		return p
	}
	encode := func(p []int32) []byte {
		var buf []byte
		for _, entry := range p {
			buf = cAppendPathEntry(buf, entry)
		}
		return buf
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := randPath(), randPath()
		cmp := bytes.Compare(encode(a), encode(b))
		want := 0
		if cPathLess(a, b) {
			want = -1
		} else if cPathLess(b, a) {
			want = 1
		}
		if cmp != want {
			t.Fatalf("trial %d: bytes.Compare=%d, cPathLess spec says %d\n  a=%v\n  b=%v",
				trial, cmp, want, a, b)
		}
	}
}

// TestPathKeyRoundTrip: cDecodePathKey inverts the encoding.
func TestPathKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := make([]int32, rng.Intn(10))
		for i := range p {
			p[i] = pathEntry(int32(rng.Intn(1<<14)), int32(rng.Intn(1<<16)))
		}
		var buf []byte
		for _, entry := range p {
			buf = cAppendPathEntry(buf, entry)
		}
		got := cDecodePathKey(buf)
		if len(got) == 0 && len(p) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("trial %d: round trip %v -> %v", trial, p, got)
		}
	}
}

// TestCompactVisitedShrinkOnly: Bloom false positives only ever prune,
// so the compact visited set explores a subset of the exact search's
// states, never flips a reachable failure to Safe at healthy filter
// sizes, and never fabricates a failure even when starved. Bounded mode
// mixes the scheduling context into the fingerprint before the filter
// sees it, so the property must hold there too.
func TestCompactVisitedShrinkOnly(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, shape := range []Options{
			{ContextBound: -1},
			{ContextBound: 2},
		} {
			for _, w := range []int{0, 8} {
				base := shape
				base.SearchWorkers = w
				base.MaxStates = 100000
				exact := Check(compile(t, src), base)
				healthyOpts := base
				healthyOpts.VisitedCompact = true
				healthyOpts.VisitedBytes = 1 << 20
				healthy := Check(compile(t, src), healthyOpts)
				tinyOpts := base
				tinyOpts.VisitedCompact = true
				tinyOpts.VisitedBytes = 64
				tiny := Check(compile(t, src), tinyOpts)

				if healthy.States > exact.States {
					t.Errorf("seed %d bound %d workers %d: healthy compact explored more states (%d) than exact (%d)",
						seed, shape.ContextBound, w, healthy.States, exact.States)
				}
				if tiny.States > exact.States {
					t.Errorf("seed %d bound %d workers %d: starved compact explored more states (%d) than exact (%d)",
						seed, shape.ContextBound, w, tiny.States, exact.States)
				}
				if exact.Verdict == ResourceBound {
					continue
				}
				if healthy.Verdict != exact.Verdict {
					t.Errorf("seed %d bound %d workers %d: healthy compact verdict %v, exact %v\n%s",
						seed, shape.ContextBound, w, healthy.Verdict, exact.Verdict, src)
				}
				if exact.Verdict == Error {
					errors++
				}
				if tiny.Verdict == Error && exact.Verdict != Error {
					t.Errorf("seed %d bound %d workers %d: starved compact invented a failure\n%s",
						seed, shape.ContextBound, w, src)
				}
				if healthy.Memory == nil || healthy.Memory.VisitedMode != "compact" {
					t.Errorf("seed %d bound %d workers %d: compact run missing memory diagnostics: %+v",
						seed, shape.ContextBound, w, healthy.Memory)
				}
			}
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; verdict preservation vacuous")
	}
}
