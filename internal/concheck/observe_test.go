package concheck

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// bigSrc interleaves two counting workers: plenty of states for budgets
// and cancellation to trip before exhaustion.
const bigSrc = `
var a;
var b;
func workerA() { iter { a = a + 1; assume(a < 60); } }
func workerB() { iter { b = b + 1; assume(b < 60); } }
func main() {
  async workerA();
  async workerB();
  assert(a + b >= 0);
}
`

// TestCanceledContextReturnsPartialResult: cancellation stops the
// interleaving search promptly with ReasonCanceled, not an error.
func TestCanceledContextReturnsPartialResult(t *testing.T) {
	c := compile(t, bigSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Check(c, Options{ContextBound: -1, Context: ctx})
	if r.Verdict != ResourceBound || r.Reason != stats.ReasonCanceled {
		t.Fatalf("want resource-bound/canceled, got %v reason=%v", r.Verdict, r.Reason)
	}
	if !strings.Contains(r.String(), "canceled") {
		t.Errorf("String() does not name the tripped bound: %q", r.String())
	}
}

// TestBudgetReasonsAndMetrics: bound trips are named, and a completed
// search reports consistent visited/peak metrics.
func TestBudgetReasonsAndMetrics(t *testing.T) {
	c := compile(t, bigSrc)
	r := Check(c, Options{ContextBound: -1, MaxStates: 200})
	if r.Verdict != ResourceBound || r.Reason != stats.ReasonStates {
		t.Fatalf("MaxStates trip: verdict=%v reason=%v", r.Verdict, r.Reason)
	}
	if !strings.Contains(r.String(), "max-states") {
		t.Errorf("String(): %q", r.String())
	}

	full := Check(c, Options{ContextBound: 2})
	if full.Verdict != Safe {
		t.Fatalf("bounded exploration not safe: %v", full)
	}
	if full.Visited == 0 || full.Visited != full.States {
		t.Errorf("visited=%d states=%d (want equal, nonzero)", full.Visited, full.States)
	}
	if full.PeakFrontier <= 0 || full.PeakDepth <= 0 {
		t.Errorf("peaks not tracked: frontier=%d depth=%d", full.PeakFrontier, full.PeakDepth)
	}
}

// TestCollectorSamples: the interleaving explorer streams progress events.
func TestCollectorSamples(t *testing.T) {
	c := compile(t, bigSrc)
	var events []stats.Event
	col := stats.NewCollector(func(e stats.Event) { events = append(events, e) }, 300, time.Hour)
	col.Start(stats.PhaseCheck)
	Check(c, Options{ContextBound: -1, MaxStates: 3000, Collector: col})
	col.End(stats.PhaseCheck)
	if len(events) < 3 {
		t.Fatalf("only %d progress events for a 3000-state exploration at cadence 300", len(events))
	}
}
