package concheck

import (
	"sync"
	"sync/atomic"

	"repro/internal/sem"
	"repro/internal/stats"
)

// The parallel interleaving search mirrors seqcheck's (see the design
// note in internal/seqcheck/parallel.go): a level-synchronized BFS where
// the worker pool expands items — here, expanding an item means stepping
// *every* schedulable thread, honoring POR and the context bound — and a
// single-threaded commit loop replays each level in (item, thread) order
// through the sequential search's budget checks, so the verdict, trace,
// and deterministic metrics are bit-identical at every worker count.
//
// The sequential concheck search is depth-first; the parallel frontier is
// breadth-first. On a full exploration the two report the same verdict
// (failure reachability does not depend on search order); runs that trip
// a budget cover different prefixes of the state space, exactly as the
// BFS/DFS choice already does in seqcheck.

// minParallelLevel is the level size below which the coordinator expands
// inline rather than paying worker fan-out.
const minParallelLevel = 4

// workerPollStride is how many items a worker claims between context
// polls.
const workerPollStride = 64

// cexpansion is one prefiltered successor: the outcome plus its visited
// key (the state hash, mixed with the scheduling context in bounded mode)
// and its raw index in the unpruned outcome list (the macro engine's
// ordering key; the per-statement engine records the loop index).
type cexpansion struct {
	out sem.Outcome
	fp  uint64
	idx int32
}

// Buffer pools shared by the expansion rounds of the per-statement and
// macro level engines (see the note in internal/seqcheck/parallel.go:
// buffers are cleared before Put so pooled memory never pins dead states;
// early returns may skip a Put, which is only a pool miss).
var (
	cexpPool  = sync.Pool{New: func() any { return new([]cexpansion) }}
	cslotPool = sync.Pool{New: func() any { return new([]citemSlot) }}
)

func cexpGet() []cexpansion {
	return (*cexpPool.Get().(*[]cexpansion))[:0]
}

func cexpPut(exps []cexpansion) {
	clear(exps)
	exps = exps[:0]
	cexpPool.Put(&exps)
}

func cslotsGet(n int) []citemSlot {
	slots := (*cslotPool.Get().(*[]citemSlot))[:0]
	if cap(slots) < n {
		return make([]citemSlot, n)
	}
	slots = slots[:n]
	clear(slots)
	return slots
}

func cslotsPut(slots []citemSlot) {
	clear(slots)
	slots = slots[:0]
	cslotPool.Put(&slots)
}

// cthread records the expansion of one schedulable thread of an item, in
// scheduling order. The commit loop replays these through the budget
// checks exactly as the sequential per-thread loop would.
type cthread struct {
	ti        int
	switches  int
	overBound bool // skipped by the context bound (counts as live, no step)
	blocked   bool
	// progressed mirrors the sequential anyProgress accounting: the step
	// had outcomes, whether or not any survived the visited prefilter.
	progressed bool
	fail       *sem.Failure
	exps       []cexpansion
}

// citemSlot is the private output slot for one level item.
type citemSlot struct {
	threads []cthread
	worker  int
}

func checkParallel(c *sem.Compiled, opts Options) *Result {
	workers := opts.SearchWorkers
	res := &Result{}
	init := sem.NewState(c)
	bounded := opts.ContextBound >= 0

	vis := cNewVisited(opts)
	initFP := sem.NewFPHasher().Hash(init)
	if bounded {
		initFP = sem.Mix64(initFP, uint64(0)) // lastTh -1 encodes as 0
		initFP = sem.Mix64(initFP, uint64(0))
	}
	vis.Seen(initFP)
	res.States = 1
	res.PeakFrontier = 1
	perWorker := make([]int, workers)
	// The level queue is a FIFO frontier bucket per depth: arrival order
	// is commit order, spilled or resident, and a fully resident level
	// streams back as one chunk — the classic whole-level pass.
	q := cNewQueue(c, opts, false)
	defer q.Close()
	defer func() {
		res.Visited = vis.Len()
		res.Parallel = &stats.Parallel{
			Workers:         workers,
			Shards:          vis.Shards(),
			PerWorkerStates: perWorker,
			ShardContention: vis.Contention(),
		}
		res.Memory = cMemoryRecord(opts, vis, q.Stats())
	}()

	hashers := make([]*sem.FPHasher, workers)
	for i := range hashers {
		hashers[i] = sem.NewFPHasher()
	}

	q.Push(0, searchState{st: init, nd: &node{}, lastTh: -1})
	for depth := 0; q.Len() > 0; depth++ {
		res.PeakDepth = depth
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				res.Verdict = ResourceBound
				res.Reason = reasonFor(err)
				return res
			}
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break
		}

		bkt := q.Drain(depth)
		total := bkt.Len()
		pushed := 0 // successors committed to depth+1 so far
		base := 0   // items of this level committed in earlier chunks
		for {
			level, _ := bkt.Next(frontierChunk)
			if len(level) == 0 {
				break
			}

			// Expansion round: step every schedulable thread of every item.
			slots := cslotsGet(len(level))
			expandItem := func(i, w int) {
				it := level[i]
				expand := -1
				if opts.POR {
					for ti := range it.st.Threads {
						if it.st.Threads[ti].Done() {
							continue
						}
						if invisibleNext(it.st, ti) {
							expand = ti
							break
						}
					}
				}
				var ths []cthread
				for ti := range it.st.Threads {
					if it.st.Threads[ti].Done() {
						continue
					}
					if expand >= 0 && ti != expand {
						continue
					}
					switches := it.switches
					if it.lastTh >= 0 && it.lastTh != ti {
						switches++
						if bounded && switches > opts.ContextBound {
							ths = append(ths, cthread{ti: ti, switches: switches, overBound: true})
							continue
						}
					}
					sr := sem.Step(it.st, ti)
					if sr.Failure != nil {
						// The sequential search returns on the first failing
						// thread; later threads of this item never step.
						ths = append(ths, cthread{ti: ti, switches: switches, fail: sr.Failure})
						break
					}
					if sr.Blocked {
						ths = append(ths, cthread{ti: ti, switches: switches, blocked: true})
						continue
					}
					exps := cexpGet()
					for k, out := range sr.Outcomes {
						fp := hashers[w].Hash(out.State)
						if bounded {
							fp = sem.Mix64(fp, uint64(ti+1))
							fp = sem.Mix64(fp, uint64(switches))
						}
						if vis.Contains(fp) {
							continue
						}
						exps = append(exps, cexpansion{out: out, fp: fp, idx: int32(k)})
					}
					ths = append(ths, cthread{
						ti: ti, switches: switches,
						progressed: len(sr.Outcomes) > 0,
						exps:       exps,
					})
				}
				slots[i] = citemSlot{threads: ths, worker: w}
			}
			if workers == 1 || len(level) < minParallelLevel {
				for i := range level {
					expandItem(i, 0)
					if opts.Context != nil && i%workerPollStride == workerPollStride-1 {
						if err := opts.Context.Err(); err != nil {
							res.Verdict = ResourceBound
							res.Reason = reasonFor(err)
							return res
						}
					}
				}
			} else {
				var claim atomic.Int64
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						polled := 0
						for {
							i := int(claim.Add(1)) - 1
							if i >= len(level) || stop.Load() {
								return
							}
							expandItem(i, w)
							if polled++; polled >= workerPollStride {
								polled = 0
								if opts.Context != nil && opts.Context.Err() != nil {
									stop.Store(true)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if stop.Load() {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(opts.Context.Err())
					return res
				}
			}

			// Commit: replay the chunk in (item, thread) order through the
			// sequential search's budget checks.
			for i := range level {
				it := level[i]
				sl := &slots[i]
				anyLive, anyProgress := false, false
				for t := range sl.threads {
					th := &sl.threads[t]
					anyLive = true
					if th.overBound {
						continue
					}
					if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
						res.Verdict = ResourceBound
						res.Reason = stats.ReasonSteps
						return res
					}
					res.Steps++
					if th.fail != nil {
						res.Verdict = Error
						res.Failure = th.fail
						failEv := sem.Event{
							Kind:     sem.EvStmt,
							ThreadID: th.fail.ThreadID,
							Pos:      th.fail.Pos,
							Text:     th.fail.Msg,
						}
						res.Trace = append(cFullTrace(c, it.nd), failEv)
						return res
					}
					if th.blocked {
						continue
					}
					anyProgress = anyProgress || th.progressed
					for _, ex := range th.exps {
						if vis.Seen(ex.fp) {
							continue // claimed by an earlier (item, thread) this level
						}
						perWorker[sl.worker]++
						res.States++
						if opts.MaxStates > 0 && res.States > opts.MaxStates {
							res.Verdict = ResourceBound
							res.Reason = stats.ReasonStates
							return res
						}
						q.Push(depth+1, searchState{
							st: ex.out.State,
							nd: &node{
								parent: it.nd, event: ex.out.Event,
								idx: ex.idx, ti: int32(th.ti), depth: depth + 1,
							},
							lastTh:   th.ti,
							switches: th.switches,
						})
						pushed++
						if fl := (total - 1 - (base + i)) + pushed; fl > res.PeakFrontier {
							res.PeakFrontier = fl
						}
					}
					if th.exps != nil {
						cexpPut(th.exps)
						th.exps = nil
					}
				}
				if anyLive && !anyProgress {
					res.Deadlocks++
				}
			}
			cslotsPut(slots)
			base += len(level)
		}
		bkt.Close()
		opts.Collector.Sample(res.States, res.Steps, pushed, depth, vis.Len())
	}
	res.Verdict = Safe
	return res
}
