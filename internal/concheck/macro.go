package concheck

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/frontier"
	"repro/internal/sem"
	"repro/internal/stats"
	"repro/internal/visited"
)

// Macro-step compression for the interleaving search. Folding is gated on
// the stepped thread being the sole live thread of both the current state
// and the successor (sem.MacroStep enforces it), so multi-threaded states
// — the scheduling points whose interleavings this checker exists to
// cover — never fold and the explored interleaving set is untouched. What
// compresses are the purely sequential stretches: the run-up before
// threads spawn and the run-down after all but one finish, which the KISS
// instrumentation inflates most.
//
//   - checkMacroSeq is the sequential depth-first search. For a sole-live
//     state the per-thread loop degenerates to one thread, so the
//     uncompressed DFS pops a folded chain contiguously and the verdict,
//     failure position, trace, and MaxSteps/MaxDepth trip points are
//     identical to the per-statement search.
//
//   - checkMacroLevel is the bucket-queue BFS used for SearchWorkers >= 1,
//     mirroring seqcheck's (see internal/seqcheck/macro.go for the
//     ordering and candidate machinery): the frontier is keyed by micro
//     depth, buckets sort by the padded (thread, successor-index) path,
//     and mid-run failures defer as candidates until every shallower
//     stored state has been expanded.

// cMacroLimit caps a fold by the remaining depth and step budget so that
// failures and budget trips land on exactly the transition where the
// per-statement search puts them.
func cMacroLimit(opts Options, depth, steps int) int {
	limit := sem.MaxMacroRun
	if opts.MaxDepth > 0 {
		if r := opts.MaxDepth - depth; r < limit {
			limit = r
		}
	}
	if opts.MaxSteps > 0 {
		if r := opts.MaxSteps - steps; r < limit {
			limit = r
		}
	}
	return limit
}

func failEvent(f *sem.Failure) sem.Event {
	return sem.Event{
		Kind:     sem.EvStmt,
		ThreadID: f.ThreadID,
		Pos:      f.Pos,
		Text:     f.Msg,
	}
}

// checkMacroSeq is the sequential depth-first interleaving search with
// macro-step compression.
func checkMacroSeq(c *sem.Compiled, opts Options) *Result {
	res := &Result{}
	init := sem.NewState(c)
	bounded := opts.ContextBound >= 0

	hasher := sem.NewFPHasher()
	// Exact mode keeps the plain map (the seed's representation); compact
	// mode swaps in the Bloom-filter store.
	var vis visited.Store
	if opts.VisitedCompact {
		vis = cNewVisited(opts)
	}
	visitedSet := map[uint64]struct{}{}
	visLen := func() int {
		if vis != nil {
			return vis.Len()
		}
		return len(visitedSet)
	}
	seen := func(s *sem.State, lastTh, switches int) bool {
		fp := hasher.Hash(s)
		if bounded {
			fp = sem.Mix64(fp, uint64(lastTh+1))
			fp = sem.Mix64(fp, uint64(switches))
		}
		if vis != nil {
			return vis.Seen(fp)
		}
		if _, ok := visitedSet[fp]; ok {
			return true
		}
		visitedSet[fp] = struct{}{}
		return false
	}
	seen(init, -1, 0)
	res.States = 1
	res.StatesStepped = 1

	stack := []searchState{{st: init, nd: &node{}, lastTh: -1}}
	res.PeakFrontier = 1
	defer func() {
		res.Visited = visLen()
		if vis != nil {
			res.Memory = cMemoryRecord(opts, vis, frontier.Stats{})
		}
	}()

	ctxCountdown := 1 // poll the context on the first iteration
	for len(stack) > 0 {
		if opts.Context != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxPollStride
				if err := opts.Context.Err(); err != nil {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(err)
					return res
				}
			}
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.nd.depth > res.PeakDepth {
			res.PeakDepth = cur.nd.depth
		}
		opts.Collector.Sample(res.States, res.Steps, len(stack), cur.nd.depth, visLen())

		if opts.MaxDepth > 0 && cur.nd.depth >= opts.MaxDepth {
			continue
		}

		expand := -1
		if opts.POR {
			for ti := range cur.st.Threads {
				if cur.st.Threads[ti].Done() {
					continue
				}
				if invisibleNext(cur.st, ti) {
					expand = ti
					break
				}
			}
		}

		anyLive, anyProgress := false, false
		for ti := range cur.st.Threads {
			if cur.st.Threads[ti].Done() {
				continue
			}
			if expand >= 0 && ti != expand {
				continue
			}
			anyLive = true

			switches := cur.switches
			if cur.lastTh >= 0 && cur.lastTh != ti {
				switches++
				if bounded && switches > opts.ContextBound {
					continue
				}
			}

			if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
				res.Verdict = ResourceBound
				res.Reason = stats.ReasonSteps
				return res
			}
			mr := sem.MacroStepMemoSum(cur.st, ti, cMacroLimit(opts, cur.nd.depth, res.Steps), opts.Memo, opts.Summaries)
			res.Steps += mr.Stepped
			res.StatesStepped += len(mr.Prefix)
			if mr.Failure != nil {
				res.Verdict = Error
				res.Failure = mr.Failure
				res.Trace = append(append(cur.nd.trace(), mr.Prefix...), failEvent(mr.Failure))
				return res
			}
			if mr.Blocked {
				// Blocked after a fold: the chain's endpoint is the blocked
				// state the per-statement search would have stored, stepped,
				// and counted against Deadlocks — mark no progress so the
				// count agrees (the folded item stands in for it).
				continue
			}
			// A non-blocked, non-failed step always has outcomes (pruning
			// may drop them, but the per-statement search progressed).
			anyProgress = true
			for k, out := range mr.Outcomes {
				if seen(out.State, ti, switches) {
					continue
				}
				res.States++
				res.StatesStepped++
				if opts.MaxStates > 0 && res.States > opts.MaxStates {
					res.Verdict = ResourceBound
					res.Reason = stats.ReasonStates
					return res
				}
				stack = append(stack, searchState{
					st: out.State,
					nd: &node{
						parent:    cur.nd,
						prefix:    mr.Prefix,
						prefixIdx: mr.PrefixIdx,
						event:     out.Event,
						idx:       mr.OutIdx[k],
						ti:        int32(ti),
						depth:     cur.nd.depth + len(mr.Prefix) + 1,
					},
					lastTh:   ti,
					switches: switches,
				})
				if len(stack) > res.PeakFrontier {
					res.PeakFrontier = len(stack)
				}
			}
		}
		if anyLive && !anyProgress {
			res.Deadlocks++
		}
	}
	res.Verdict = Safe
	return res
}

// pathEntry packs a (thread, raw successor index) pair into one ordered
// key: the per-statement BFS emits an item's successors in ascending
// (thread, index) order, which this encoding preserves.
func pathEntry(ti, idx int32) int32 {
	return ti<<16 | idx
}

// cPathLess is lexicographic order on padded (thread, successor-index)
// paths; folded positions use the folding thread's id. The engines
// compare key-encoded paths with bytes.Compare instead (see
// cAppendNodePath); cPathLess is the specification the encoding is
// tested against.
func cPathLess(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// cMacroCand is a mid-run failure deferred until every stored state
// shallower than its micro depth has been expanded. path is the failing
// state's padded path in the frontier's key encoding — bytes.Compare on
// it is cPathLess on the entry slices.
type cMacroCand struct {
	depth  int
	path   []byte
	nd     *node
	prefix []sem.Event
	fail   *sem.Failure
}

func cMinCand(cands []cMacroCand) int {
	h := -1
	for i := range cands {
		if h < 0 || cands[i].depth < cands[h].depth ||
			(cands[i].depth == cands[h].depth && bytes.Compare(cands[i].path, cands[h].path) < 0) {
			h = i
		}
	}
	return h
}

func cFailFromCand(c *sem.Compiled, res *Result, cd *cMacroCand) *Result {
	res.Verdict = Error
	res.Failure = cd.fail
	res.Trace = append(append(cFullTrace(c, cd.nd), cd.prefix...), failEvent(cd.fail))
	return res
}

// cmThread records the (possibly folded) expansion of one schedulable
// thread of a bucket item.
type cmThread struct {
	ti        int
	switches  int
	overBound bool
	blocked   bool
	fail      *sem.Failure
	prefix    []sem.Event
	prefixIdx []int32
	stepped   int
	exps      []cexpansion
}

// cmSlot is the private output slot for one bucket item.
type cmSlot struct {
	threads []cmThread
	worker  int
}

// checkMacroLevel is the micro-depth bucket BFS with macro-step
// compression, serving SearchWorkers >= 1.
//
// The bucket queue is a frontier.Queue in ordered mode (see
// internal/seqcheck/macro.go — the chunking and spilling machinery is
// shared): buckets stay in padded-path order resident or spilled, fully
// resident buckets stream back as one chunk, and the fold limit and the
// bucket's competing failure candidate are fixed before the first chunk.
func checkMacroLevel(c *sem.Compiled, opts Options) *Result {
	workers := opts.SearchWorkers
	res := &Result{}
	init := sem.NewState(c)
	bounded := opts.ContextBound >= 0

	vis := cNewVisited(opts)
	initFP := sem.NewFPHasher().Hash(init)
	if bounded {
		initFP = sem.Mix64(initFP, uint64(0)) // lastTh -1 encodes as 0
		initFP = sem.Mix64(initFP, uint64(0))
	}
	vis.Seen(initFP)
	res.States = 1
	res.StatesStepped = 1
	res.PeakFrontier = 1
	nworkers := workers
	if nworkers < 1 {
		nworkers = 1
	}
	perWorker := make([]int, nworkers)
	q := cNewQueue(c, opts, true)
	defer q.Close()
	defer func() {
		res.Visited = vis.Len()
		res.Parallel = &stats.Parallel{
			Workers:         workers,
			Shards:          vis.Shards(),
			PerWorkerStates: perWorker,
			ShardContention: vis.Contention(),
		}
		res.Memory = cMemoryRecord(opts, vis, q.Stats())
	}()

	hashers := make([]*sem.FPHasher, nworkers)
	for i := range hashers {
		hashers[i] = sem.NewFPHasher()
	}

	q.Push(0, searchState{st: init, nd: &node{}, lastTh: -1})
	var cands []cMacroCand

	for q.Len() > 0 {
		depth, _ := q.MinDepth()
		res.PeakDepth = depth

		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				res.Verdict = ResourceBound
				res.Reason = reasonFor(err)
				return res
			}
		}
		if h := cMinCand(cands); h >= 0 && cands[h].depth < depth {
			return cFailFromCand(c, res, &cands[h])
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break // buckets come off the queue in increasing depth
		}

		bkt := q.Drain(depth)

		// Fixed for every chunk of this bucket: the limit reads the step
		// counter as of the bucket's start, and candidates appended during
		// this bucket's commit are strictly deeper.
		limit := cMacroLimit(opts, depth, res.Steps)
		candHere := -1
		for i := range cands {
			if cands[i].depth == depth &&
				(candHere < 0 || bytes.Compare(cands[i].path, cands[candHere].path) < 0) {
				candHere = i
			}
		}

		for {
			bucket, keys := bkt.Next(frontierChunk)
			if len(bucket) == 0 {
				break
			}

			// Expansion round: step (and fold) every schedulable thread of
			// every item, read-only against the visited set.
			slots := make([]cmSlot, len(bucket))
			expandItem := func(i, w int) {
				it := bucket[i]
				expand := -1
				if opts.POR {
					for ti := range it.st.Threads {
						if it.st.Threads[ti].Done() {
							continue
						}
						if invisibleNext(it.st, ti) {
							expand = ti
							break
						}
					}
				}
				var ths []cmThread
				for ti := range it.st.Threads {
					if it.st.Threads[ti].Done() {
						continue
					}
					if expand >= 0 && ti != expand {
						continue
					}
					switches := it.switches
					if it.lastTh >= 0 && it.lastTh != ti {
						switches++
						if bounded && switches > opts.ContextBound {
							ths = append(ths, cmThread{ti: ti, switches: switches, overBound: true})
							continue
						}
					}
					mr := sem.MacroStepMemoSum(it.st, ti, limit, opts.Memo, opts.Summaries)
					th := cmThread{
						ti: ti, switches: switches,
						fail:      mr.Failure,
						prefix:    mr.Prefix,
						prefixIdx: mr.PrefixIdx,
						stepped:   mr.Stepped,
						blocked:   mr.Blocked,
					}
					if mr.Failure != nil {
						// Folding only happens on sole-live items, so a failing
						// thread is this item's only schedulable thread either
						// way; stop as the sequential search does.
						ths = append(ths, th)
						break
					}
					if !mr.Blocked {
						exps := cexpGet()
						for k, out := range mr.Outcomes {
							fp := hashers[w].Hash(out.State)
							if bounded {
								fp = sem.Mix64(fp, uint64(ti+1))
								fp = sem.Mix64(fp, uint64(switches))
							}
							if vis.Contains(fp) {
								continue
							}
							exps = append(exps, cexpansion{out: out, fp: fp, idx: mr.OutIdx[k]})
						}
						th.exps = exps
					}
					ths = append(ths, th)
				}
				slots[i] = cmSlot{threads: ths, worker: w}
			}
			if workers <= 1 || len(bucket) < minParallelLevel {
				for i := range bucket {
					expandItem(i, 0)
					if opts.Context != nil && i%workerPollStride == workerPollStride-1 {
						if err := opts.Context.Err(); err != nil {
							res.Verdict = ResourceBound
							res.Reason = reasonFor(err)
							return res
						}
					}
				}
			} else {
				var claim atomic.Int64
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						polled := 0
						for {
							i := int(claim.Add(1)) - 1
							if i >= len(bucket) || stop.Load() {
								return
							}
							expandItem(i, w)
							if polled++; polled >= workerPollStride {
								polled = 0
								if opts.Context != nil && opts.Context.Err() != nil {
									stop.Store(true)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if stop.Load() {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(opts.Context.Err())
					return res
				}
			}

			// Commit: replay the chunk in sorted (item, thread) order
			// through the sequential search's budget checks.
			for i := range bucket {
				it := bucket[i]
				sl := &slots[i]
				if candHere >= 0 && bytes.Compare(cands[candHere].path, keys[i]) < 0 {
					return cFailFromCand(c, res, &cands[candHere])
				}
				anyLive, anyProgress := false, false
				for t := range sl.threads {
					th := &sl.threads[t]
					anyLive = true
					if th.overBound {
						continue
					}
					if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
						res.Verdict = ResourceBound
						res.Reason = stats.ReasonSteps
						return res
					}
					res.Steps += th.stepped
					res.StatesStepped += len(th.prefix)
					if th.fail != nil {
						if len(th.prefix) == 0 {
							res.Verdict = Error
							res.Failure = th.fail
							res.Trace = append(cFullTrace(c, it.nd), failEvent(th.fail))
							return res
						}
						// keys[i] is reused by the next chunk; copy it.
						p := append([]byte(nil), keys[i]...)
						for _, idx := range th.prefixIdx {
							p = cAppendPathEntry(p, pathEntry(int32(th.ti), idx))
						}
						cands = append(cands, cMacroCand{
							depth:  depth + len(th.prefix),
							path:   p,
							nd:     it.nd,
							prefix: th.prefix,
							fail:   th.fail,
						})
						// The chain progressed before failing; the per-statement
						// search would not count this item as a deadlock.
						anyProgress = true
						continue
					}
					if th.blocked {
						continue
					}
					anyProgress = true
					for _, ex := range th.exps {
						if vis.Seen(ex.fp) {
							continue
						}
						perWorker[sl.worker]++
						res.States++
						res.StatesStepped++
						if opts.MaxStates > 0 && res.States > opts.MaxStates {
							res.Verdict = ResourceBound
							res.Reason = stats.ReasonStates
							return res
						}
						nd := &node{
							parent:    it.nd,
							prefix:    th.prefix,
							prefixIdx: th.prefixIdx,
							event:     ex.out.Event,
							idx:       ex.idx,
							ti:        int32(th.ti),
							depth:     depth + len(th.prefix) + 1,
						}
						q.Push(nd.depth, searchState{
							st:       ex.out.State,
							nd:       nd,
							lastTh:   th.ti,
							switches: th.switches,
						})
					}
					cexpPut(th.exps)
					th.exps = nil
				}
				if anyLive && !anyProgress {
					res.Deadlocks++
				}
			}
		}
		bkt.Close()
		if candHere >= 0 {
			return cFailFromCand(c, res, &cands[candHere])
		}
		if q.Len() > res.PeakFrontier {
			res.PeakFrontier = q.Len()
		}
		opts.Collector.Sample(res.States, res.Steps, q.Len(), depth, vis.Len())
	}
	if h := cMinCand(cands); h >= 0 {
		return cFailFromCand(c, res, &cands[h])
	}
	res.Verdict = Safe
	return res
}
