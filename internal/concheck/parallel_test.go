package concheck

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/randprog"
)

// stripParallel drops the scheduling-dependent worker diagnostics, leaving
// the fields that must be bit-identical at every worker count.
func stripParallel(r *Result) Result {
	cp := *r
	cp.Parallel = nil
	return cp
}

// TestParallelIdenticalAcrossWorkerCounts: verdict, trace, and every
// deterministic counter agree bit-for-bit at worker counts 1, 2, and 8,
// across random concurrent programs, bounded and unbounded scheduling,
// POR on and off, and budgets that trip mid-search.
func TestParallelIdenticalAcrossWorkerCounts(t *testing.T) {
	shapes := []Options{
		{ContextBound: -1},
		{ContextBound: -1, POR: true},
		{ContextBound: 2},
		{ContextBound: -1, MaxStates: 200},
		{ContextBound: -1, MaxSteps: 400},
		{ContextBound: -1, MaxDepth: 8},
	}
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for si, shape := range shapes {
			var base Result
			for _, w := range []int{1, 2, 8} {
				opts := shape
				opts.SearchWorkers = w
				got := stripParallel(Check(compile(t, src), opts))
				if w == 1 {
					base = got
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("seed %d shape %d: workers=1 vs workers=%d:\n  %+v\n  %+v",
						seed, si, w, base, got)
				}
			}
		}
	}
}

// TestParallelAgreesWithSequential: the sequential search is depth-first
// and the parallel one breadth-first, so on full explorations (no budget
// trip) they agree on the verdict and on the order-independent counters.
func TestParallelAgreesWithSequential(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 40; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		seq := Check(compile(t, src), Options{ContextBound: -1, MaxStates: 100000})
		par := Check(compile(t, src), Options{ContextBound: -1, SearchWorkers: 4, MaxStates: 100000})
		if seq.Verdict == ResourceBound || par.Verdict == ResourceBound {
			continue
		}
		if seq.Verdict != par.Verdict {
			t.Errorf("seed %d: sequential %v, parallel %v\n%s", seed, seq.Verdict, par.Verdict, src)
			continue
		}
		if seq.Verdict == Error {
			errors++
			continue
		}
		if seq.States != par.States || seq.Steps != par.Steps || seq.Visited != par.Visited || seq.Deadlocks != par.Deadlocks {
			t.Errorf("seed %d: counters diverge:\n  sequential %+v\n  parallel   %+v",
				seed, stripParallel(seq), stripParallel(par))
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; verdict agreement vacuous")
	}
}

// blowupSrc is the interleaving-blowup family: n unsynchronized three-step
// increments give a state space exponential in n.
const blowupSrc = `
var x;
func inc() { var t; var u; t = x; u = t + 1; x = u; }
func main() {
  x = 0;
  async inc(); async inc(); async inc(); async inc(); async inc(); async inc();
}
`

// TestParallelCancellationNoGoroutineLeak: a deadline firing mid-search
// stops the worker pool; no goroutine outlives Check.
func TestParallelCancellationNoGoroutineLeak(t *testing.T) {
	c := compile(t, blowupSrc)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		r := Check(c, Options{ContextBound: -1, SearchWorkers: 8, Context: ctx})
		cancel()
		if r.Verdict != ResourceBound {
			t.Fatalf("run %d: six-thread blowup in 5ms is implausible; got %v", i, r.Verdict)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
