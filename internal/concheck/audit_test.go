package concheck

import (
	"testing"

	"repro/internal/randprog"
)

// TestAuditFingerprints: the hash-keyed visited set must behave exactly
// like the string-keyed one on small concurrent programs — zero 64-bit
// collisions and an unchanged search — in both unbounded and
// context-bounded modes (where the search context is mixed into the key).
func TestAuditFingerprints(t *testing.T) {
	srcs := []string{
		`var x; func main() { async f(); x = x + 1; } func f() { x = x + 1; }`,
		`var x; func main() { async f(); async f(); x = 1; assert(x >= 0); } func f() { x = x + 1; }`,
	}
	for i := int64(0); i < 12; i++ {
		srcs = append(srcs, randprog.GenerateTwoThreaded(i, randprog.Default))
	}
	for i, src := range srcs {
		c := compile(t, src)
		for _, bound := range []int{-1, 2} {
			// Audit mode forces macro-step compression off (its maps shadow
			// per-statement visited inserts), so compare against the
			// per-statement search.
			plain := Check(c, Options{ContextBound: bound, MaxStates: 20000, DisableMacroSteps: true})
			audit := Check(c, Options{ContextBound: bound, MaxStates: 20000, AuditFingerprints: true})
			if audit.HashCollisions != 0 {
				t.Errorf("program %d (bound=%d): %d hash collisions", i, bound, audit.HashCollisions)
			}
			if plain.Verdict != audit.Verdict || plain.States != audit.States || plain.Steps != audit.Steps {
				t.Errorf("program %d (bound=%d): audit changed the search: %v/%d/%d vs %v/%d/%d",
					i, bound, plain.Verdict, plain.States, plain.Steps,
					audit.Verdict, audit.States, audit.Steps)
			}
		}
	}
}
