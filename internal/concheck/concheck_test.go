package concheck

import (
	"testing"

	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/randprog"
	"repro/internal/sem"
)

func compile(t *testing.T, src string) *sem.Compiled {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lower.Program(p)
	c, err := sem.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestSequentialProgramStillWorks(t *testing.T) {
	c := compile(t, `var x; func main() { x = 1; assert(x == 1); }`)
	r := Check(c, Options{ContextBound: -1})
	if r.Verdict != Safe {
		t.Fatalf("want safe, got %v", r)
	}
}

func TestInterleavingBugFound(t *testing.T) {
	// Classic lost-update assertion: with two unsynchronized increments,
	// x can end at 1.
	c := compile(t, `
var x;
var done;
func inc() { var t; t = x; x = t + 1; done = done + 1; }
func check() { assume(done == 2); assert(x == 2); }
func main() {
  x = 0; done = 0;
  async inc();
  async inc();
  async check();
}
`)
	r := Check(c, Options{ContextBound: -1})
	if r.Verdict != Error {
		t.Fatalf("want lost-update assertion failure, got %v", r)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestAtomicIncrementSafe(t *testing.T) {
	c := compile(t, `
var x;
var done;
func inc() { atomic { x = x + 1; done = done + 1; } }
func check() { assume(done == 2); assert(x == 2); }
func main() {
  x = 0; done = 0;
  async inc();
  async inc();
  async check();
}
`)
	r := Check(c, Options{ContextBound: -1})
	if r.Verdict != Safe {
		t.Fatalf("want safe with atomic increments, got %v", r)
	}
}

func TestContextBoundLimitsDetection(t *testing.T) {
	// The violation needs at least 2 context switches: main -> worker
	// (seeing the half-initialized state) requires main to run, switch to
	// worker mid-main, and the assert is in the worker.
	src := `
var a;
var b;
func worker() {
  assume(a == 1);
  assert(b == 1);
}
func main() {
  async worker();
  a = 1;
  b = 1;
}
`
	// With 0 context switches only one thread runs: no error (worker
	// blocks immediately if scheduled first, or main runs alone).
	c := compile(t, src)
	r0 := Check(c, Options{ContextBound: 0})
	if r0.Verdict != Safe {
		t.Fatalf("context bound 0: want safe, got %v", r0)
	}
	// Unbounded: main sets a=1, switch to worker: a==1, b==0 -> error.
	r := Check(compile(t, src), Options{ContextBound: -1})
	if r.Verdict != Error {
		t.Fatalf("unbounded: want error, got %v", r)
	}
	// One switch suffices: run main through a=1, then switch to worker.
	r1 := Check(compile(t, src), Options{ContextBound: 1})
	if r1.Verdict != Error {
		t.Fatalf("context bound 1: want error, got %v", r1)
	}
}

func TestDeadlockIsNotAnError(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  assume(x == 1);
}
`)
	r := Check(c, Options{ContextBound: -1})
	if r.Verdict != Safe {
		t.Fatalf("a blocked program is not an error in this semantics, got %v", r)
	}
	if r.Deadlocks == 0 {
		t.Error("deadlock not counted")
	}
}

func TestBlockedThreadRetriedAfterUnblock(t *testing.T) {
	c := compile(t, `
var flag;
func waiter() { assume(flag == 1); assert(false); }
func main() { flag = 0; async waiter(); flag = 1; }
`)
	r := Check(c, Options{ContextBound: -1})
	if r.Verdict != Error {
		t.Fatalf("waiter must run after flag set, got %v", r)
	}
}

func TestMaxStatesBudget(t *testing.T) {
	c := compile(t, `
var x;
func inc() { var t; t = x; x = t + 1; }
func main() {
  x = 0;
  async inc(); async inc(); async inc(); async inc(); async inc();
}
`)
	r := Check(c, Options{ContextBound: -1, MaxStates: 100})
	if r.Verdict != ResourceBound {
		t.Fatalf("want resource-bound, got %v", r)
	}
}

func TestStateCountGrowsWithThreads(t *testing.T) {
	prog := func(n int) string {
		src := "var x;\nfunc inc() { var t; t = x; x = t + 1; }\nfunc main() {\n  x = 0;\n"
		for i := 0; i < n; i++ {
			src += "  async inc();\n"
		}
		return src + "}\n"
	}
	s2 := Check(compile(t, prog(2)), Options{ContextBound: -1}).States
	s4 := Check(compile(t, prog(4)), Options{ContextBound: -1}).States
	if s4 <= 4*s2 {
		t.Errorf("expected superlinear growth: 2 threads %d states, 4 threads %d", s2, s4)
	}
}

// TestPORAgreesWithFullExploration: partial-order reduction must preserve
// verdicts; differential-test it against full exploration on random
// programs (the strongest check we have, since concheck is itself the
// ground truth elsewhere).
func TestPORAgreesWithFullExploration(t *testing.T) {
	srcs := []string{
		`var x; func inc() { var t; t = x; x = t + 1; } func main() { x = 0; async inc(); async inc(); }`,
		`var x; var done;
func inc() { var t; t = x; x = t + 1; done = done + 1; }
func check() { assume(done == 2); assert(x == 2); }
func main() { x = 0; done = 0; async inc(); async inc(); async check(); }`,
		`var flag; func waiter() { assume(flag == 1); assert(false); }
func main() { flag = 0; async waiter(); flag = 1; }`,
		`var a; var b; func w() { a = 1; b = 1; } func r() { var t; t = b; if (t == 1) { assert(a == 1); } }
func main() { a = 0; b = 0; async w(); async r(); }`,
	}
	for i, src := range srcs {
		full := Check(compile(t, src), Options{ContextBound: -1})
		por := Check(compile(t, src), Options{ContextBound: -1, POR: true})
		if full.Verdict != por.Verdict {
			t.Errorf("program %d: full %v, POR %v", i, full.Verdict, por.Verdict)
		}
		if por.States > full.States {
			t.Errorf("program %d: POR explored more states (%d) than full (%d)", i, por.States, full.States)
		}
	}
}

// TestPORReducesStates: on the blowup family (threads with local
// read-modify-write steps) POR must cut the state count.
func TestPORReducesStates(t *testing.T) {
	src := `
var x;
func inc() { var t; var u; t = x; u = t + 1; x = u; }
func main() { x = 0; async inc(); async inc(); async inc(); async inc(); }
`
	full := Check(compile(t, src), Options{ContextBound: -1})
	por := Check(compile(t, src), Options{ContextBound: -1, POR: true})
	if full.Verdict != por.Verdict {
		t.Fatalf("verdicts differ: full %v, POR %v", full.Verdict, por.Verdict)
	}
	t.Logf("states: full=%d POR=%d (%.1fx reduction)", full.States, por.States,
		float64(full.States)/float64(por.States))
	if por.States >= full.States {
		t.Errorf("POR did not reduce states: %d vs %d", por.States, full.States)
	}
}

// TestPORDifferentialOnRandomPrograms: POR and full exploration agree on
// verdicts across the random-program population.
func TestPORDifferentialOnRandomPrograms(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 80; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		full := Check(compile(t, src), Options{ContextBound: -1, MaxStates: 200000})
		por := Check(compile(t, src), Options{ContextBound: -1, POR: true, MaxStates: 200000})
		if full.Verdict == ResourceBound || por.Verdict == ResourceBound {
			continue
		}
		if full.Verdict != por.Verdict {
			t.Errorf("seed %d: full %v, POR %v\n%s", seed, full.Verdict, por.Verdict, src)
		}
		if full.Verdict == Error {
			errors++
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; differential test vacuous")
	}
	t.Logf("agreed on %d error verdicts", errors)
}
