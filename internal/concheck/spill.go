package concheck

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frontier"
	"repro/internal/sem"
	"repro/internal/stats"
	"repro/internal/visited"
)

// Memory-bounded search support for the interleaving BFS engines,
// mirroring internal/seqcheck/spill.go. The frontier key is the padded
// (thread, successor-index) path — pathEntry packs both into one
// non-negative int32, so 4-byte big-endian encoding makes bytes.Compare
// reproduce cPathLess. The payload is the scheduling context (last
// thread, consumed switches) followed by a sem state snapshot. A node
// restored from disk is root-like with the path in base; the trace of a
// failure beneath it is rebuilt by replaying base's (thread, index)
// entries from the initial state.

// frontierChunk is how many frames a spilled bucket is streamed in at a
// time; fully resident buckets arrive as one chunk (the classic
// whole-bucket pass).
const frontierChunk = 4096

// cframeNodeBytes is the budget estimate for a frame's node, scheduling
// context, and queue slot on top of its state.
const cframeNodeBytes = 112

func cAppendPathEntry(buf []byte, entry int32) []byte {
	return binary.BigEndian.AppendUint32(buf, uint32(entry))
}

// cAppendNodePath appends nd's full padded (thread, successor-index)
// path (root-first) in key encoding.
func cAppendNodePath(buf []byte, nd *node) []byte {
	if nd == nil {
		return buf
	}
	if nd.parent != nil {
		buf = cAppendNodePath(buf, nd.parent)
		for _, idx := range nd.prefixIdx {
			buf = cAppendPathEntry(buf, pathEntry(nd.ti, idx))
		}
		return cAppendPathEntry(buf, pathEntry(nd.ti, nd.idx))
	}
	for _, entry := range nd.base {
		buf = cAppendPathEntry(buf, entry)
	}
	return buf
}

func cDecodePathKey(key []byte) []int32 {
	out := make([]int32, len(key)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(key[i*4:]))
	}
	return out
}

// cNewQueue builds the frontier queue for a concheck BFS engine; ordered
// selects path-key order (the macro bucket engine) over arrival order
// (the per-statement level engine).
func cNewQueue(c *sem.Compiled, opts Options, ordered bool) *frontier.Queue[searchState] {
	return frontier.New(frontier.Config{
		BudgetBytes: opts.FrontierBudget,
		Dir:         opts.SpillDir,
		Ordered:     ordered,
	}, frontier.Codec[searchState]{
		Key: func(s searchState, buf []byte) []byte {
			return cAppendNodePath(buf, s.nd)
		},
		Encode: func(s searchState, buf []byte) []byte {
			buf = binary.AppendUvarint(buf, uint64(s.lastTh+1))
			buf = binary.AppendUvarint(buf, uint64(s.switches))
			return sem.AppendSnapshot(buf, s.st)
		},
		Decode: func(key, payload []byte, depth int) searchState {
			lastTh, n1 := binary.Uvarint(payload)
			if n1 <= 0 {
				panic("concheck: corrupt spilled frame: lastTh")
			}
			switches, n2 := binary.Uvarint(payload[n1:])
			if n2 <= 0 {
				panic("concheck: corrupt spilled frame: switches")
			}
			st, err := sem.DecodeSnapshot(c, payload[n1+n2:])
			if err != nil {
				panic(fmt.Sprintf("concheck: corrupt spilled frame: %v", err))
			}
			return searchState{
				st:       st,
				nd:       &node{base: cDecodePathKey(key), depth: depth},
				lastTh:   int(lastTh) - 1,
				switches: int(switches),
			}
		},
		Size: func(s searchState) int {
			return s.st.MemSize() + cframeNodeBytes
		},
	})
}

// cReplayPath re-executes the (thread, successor-index) entries of a
// padded path from the initial state, returning the event sequence it
// spells. O(depth), run once per reported failure under a restored frame.
func cReplayPath(c *sem.Compiled, path []int32) []sem.Event {
	st := sem.NewState(c)
	evs := make([]sem.Event, 0, len(path))
	for _, entry := range path {
		ti, idx := int(entry>>16), int(entry&0xffff)
		sr := sem.Step(st, ti)
		if sr.Failure != nil || idx >= len(sr.Outcomes) {
			panic(fmt.Sprintf("concheck: spilled path does not replay (thread %d idx %d of %d outcomes)",
				ti, idx, len(sr.Outcomes)))
		}
		out := sr.Outcomes[idx]
		evs = append(evs, out.Event)
		st = out.State
	}
	return evs
}

// cFullTrace is node.trace extended to chains rooted in a restored frame.
func cFullTrace(c *sem.Compiled, nd *node) []sem.Event {
	root := nd
	for root != nil && root.parent != nil {
		root = root.parent
	}
	if root == nil || len(root.base) == 0 {
		return nd.trace()
	}
	pre := cReplayPath(c, root.base)
	return append(pre, nd.trace()...)
}

// cNewVisited selects the visited store for this search's options.
func cNewVisited(opts Options) visited.Store {
	if !opts.VisitedCompact {
		return visited.New(opts.NumShards)
	}
	if opts.AuditVisited {
		return visited.NewAudited(opts.VisitedBytes)
	}
	return visited.NewCompact(opts.VisitedBytes)
}

// cMemoryRecord assembles the Result.Memory diagnostics; nil when neither
// memory-bounding feature engaged.
func cMemoryRecord(opts Options, vis visited.Store, fst frontier.Stats) *stats.Memory {
	if !opts.VisitedCompact && opts.FrontierBudget <= 0 {
		return nil
	}
	m := &stats.Memory{VisitedMode: "exact"}
	var filter *visited.Compact
	switch v := vis.(type) {
	case *visited.Compact:
		filter = v
	case *visited.Audited:
		filter = v.Filter()
		m.VisitedFalsePositives = v.FalsePositives()
	}
	if filter != nil {
		m.VisitedMode = "compact"
		m.VisitedBytes = filter.SizeBytes()
		m.VisitedOccupancy = filter.Occupancy()
		m.VisitedFPRate = filter.EstFPRate()
	}
	if opts.FrontierBudget > 0 {
		m.SpillBudgetBytes = opts.FrontierBudget
		m.SpilledBytes = fst.SpilledBytes
		m.SpilledFrames = fst.SpilledFrames
		m.SpilledRuns = fst.Runs
		m.MergePasses = fst.MergePasses
		m.FrontierPeakRAM = fst.PeakRAMBytes
	}
	return m
}
