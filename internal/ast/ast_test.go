package ast

import (
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	if got := (Pos{}).String(); got != "<generated>" {
		t.Errorf("zero pos: %q", got)
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("3:7 pos: %q", got)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos is valid")
	}
	if !(Pos{Line: 1, Col: 1}).IsValid() {
		t.Error("1:1 pos is invalid")
	}
}

func TestRecordFieldIndex(t *testing.T) {
	r := &Record{Name: "R", Fields: []string{"a", "b", "c"}}
	if r.FieldIndex("b") != 1 {
		t.Errorf("FieldIndex(b) = %d", r.FieldIndex("b"))
	}
	if r.FieldIndex("z") != -1 {
		t.Errorf("FieldIndex(z) = %d", r.FieldIndex("z"))
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Records: []*Record{{Name: "R"}},
		Globals: []*VarDecl{{Name: "g"}},
		Funcs:   []*Func{{Name: "main", Body: Blk()}},
	}
	if p.FindRecord("R") == nil || p.FindRecord("X") != nil {
		t.Error("FindRecord wrong")
	}
	if p.FindGlobal("g") == nil || p.FindGlobal("x") != nil {
		t.Error("FindGlobal wrong")
	}
	if p.FindFunc("main") == nil || p.FindFunc("other") != nil {
		t.Error("FindFunc wrong")
	}
}

func TestRaceTargetString(t *testing.T) {
	var nilT *RaceTarget
	if nilT.String() != "<none>" {
		t.Errorf("nil target: %q", nilT.String())
	}
	if (&RaceTarget{Global: "g"}).String() != "g" {
		t.Error("global target string")
	}
	if (&RaceTarget{Record: "R", Field: "f"}).String() != "R.f" {
		t.Error("field target string")
	}
}

// buildSample constructs a program exercising every node type through the
// builder helpers.
func buildSample() *Program {
	f := NewFunc("main", nil, []string{"x", "p", "b"},
		Set("x", I(1)),
		Set("x", Add(V("x"), I(2))),
		Set("x", Sub(V("x"), I(1))),
		Set("p", Addr("g")),
		Assign(Deref(V("p")), I(3)),
		Set("b", Eq(V("x"), I(2))),
		Set("b", Ne(V("x"), I(9))),
		Set("b", Not(V("b"))),
		Assert(V("b")),
		Assume(B(true)),
		Atomic(Set("x", I(0))),
		Benign(Set("x", I(5))),
		Call("x", Fn("aux"), I(1)),
		CallDirect("", "aux", I(2)),
		Async(Fn("aux"), V("x")),
		If(V("b"), Blk(Skip()), Blk(Skip())),
		While(V("b"), Blk(Set("b", B(false)))),
		Choice(Blk(Skip()), Blk(Set("x", Null()))),
		Iter(Blk(Skip())),
		Ret(V("x")),
	)
	aux := NewFunc("aux", []string{"a"}, []string{"e", "q"},
		Set("e", New("R")),
		Assign(Field(V("e"), "f"), V("a")),
		Set("q", AddrField(V("e"), "f")),
		Set("a", Field(V("e"), "f")),
		Ret(V("a")),
	)
	return &Program{
		Records: []*Record{{Name: "R", Fields: []string{"f"}}},
		Globals: []*VarDecl{{Name: "g"}},
		Funcs:   []*Func{f, aux},
	}
}

func TestCloneProgramIsDeepAndEqual(t *testing.T) {
	p := buildSample()
	c := CloneProgram(p)
	if Print(p) != Print(c) {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone; the original must not change.
	before := Print(p)
	c.Funcs[0].Body.Stmts[0].(*AssignStmt).Rhs = I(99)
	c.Records[0].Fields[0] = "changed"
	c.Globals[0].Name = "renamed"
	if Print(p) != before {
		t.Error("mutating the clone changed the original")
	}
}

func TestCloneStmtCoversAllTypes(t *testing.T) {
	p := buildSample()
	for _, f := range p.Funcs {
		for _, s := range f.Body.Stmts {
			c := CloneStmt(s)
			if PrintStmt(c) != PrintStmt(s) {
				t.Errorf("clone of %T prints differently:\n%s\nvs\n%s", s, PrintStmt(s), PrintStmt(c))
			}
		}
	}
	// Intrinsics too.
	for _, s := range []Stmt{
		&TsPutStmt{Fn: Fn("f"), Args: []Expr{I(1)}},
		&TsDispatchStmt{},
	} {
		if PrintStmt(CloneStmt(s)) != PrintStmt(s) {
			t.Errorf("intrinsic clone differs for %T", s)
		}
	}
}

func TestCloneExprCoversIntrinsics(t *testing.T) {
	for _, e := range []Expr{
		&TsSizeExpr{},
		&RaceCellExpr{X: V("x")},
		Null(), B(true), I(-3), Fn("f"), Addr("v"), Deref(V("p")),
		Field(V("p"), "f"), AddrField(V("p"), "f"), Not(V("b")),
		Bin("<=", V("a"), V("b")), New("R"),
	} {
		c := CloneExpr(e)
		if PrintExpr(c) != PrintExpr(e) {
			t.Errorf("clone of %T prints differently", e)
		}
	}
	if CloneExpr(nil) != nil {
		t.Error("clone of nil expr")
	}
}

func TestWalkStmtsVisitsEverything(t *testing.T) {
	p := buildSample()
	count := 0
	WalkStmts(p.Funcs[0].Body, func(Stmt) bool { count++; return true })
	// main body has 20 top statements plus nested blocks/branches.
	if count < 25 {
		t.Errorf("WalkStmts visited only %d nodes", count)
	}

	// Early cutoff: returning false skips children.
	shallow := 0
	WalkStmts(p.Funcs[0].Body, func(s Stmt) bool {
		shallow++
		_, isBlock := s.(*Block)
		return isBlock && shallow == 1 // only descend from the root block
	})
	if shallow != 1+len(p.Funcs[0].Body.Stmts) {
		t.Errorf("cutoff walk visited %d, want %d", shallow, 1+len(p.Funcs[0].Body.Stmts))
	}
}

func TestWalkExprsFindsLeaves(t *testing.T) {
	s := Set("x", Add(V("a"), V("b")))
	var names []string
	WalkExprs(s, func(e Expr) {
		if v, ok := e.(*VarExpr); ok {
			names = append(names, v.Name)
		}
	})
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "a") || !strings.Contains(joined, "b") || !strings.Contains(joined, "x") {
		t.Errorf("WalkExprs missed leaves: %v", names)
	}
}

func TestCountStmtsAndUsesConcurrency(t *testing.T) {
	p := buildSample()
	if n := CountStmts(p); n < 25 {
		t.Errorf("CountStmts = %d", n)
	}
	if !UsesConcurrency(p) {
		t.Error("sample uses async+atomic but UsesConcurrency is false")
	}
	seq := &Program{Funcs: []*Func{NewFunc("main", nil, nil, Skip())}}
	if UsesConcurrency(seq) {
		t.Error("sequential program misdetected as concurrent")
	}
}

func TestPrintStableUnderClone(t *testing.T) {
	p := buildSample()
	if Print(p) != Print(CloneProgram(CloneProgram(p))) {
		t.Error("double clone changes printing")
	}
}

func TestPrintParenthesization(t *testing.T) {
	// *(p + 1) style nesting must print unambiguously.
	e := Deref(Bin("+", V("p"), I(1)))
	out := PrintExpr(e)
	if out != "*((p + 1))" && out != "*(p + 1)" {
		t.Errorf("deref of binary printed as %q", out)
	}
	u := Not(Bin("==", V("a"), V("b")))
	if got := PrintExpr(u); !strings.HasPrefix(got, "!(") {
		t.Errorf("negated comparison printed as %q", got)
	}
}
