package ast

import (
	"fmt"
	"strings"
)

// Print renders a program back to concrete syntax. The output parses back
// to an equivalent program (including the __ts_put/__ts_dispatch/__ts_size/
// __race_cell spellings of the KISS intrinsics), which the golden tests of
// the transformation rely on.
func Print(p *Program) string {
	var pr printer
	pr.program(p)
	return pr.b.String()
}

// PrintStmt renders a single statement (at the given indent level) to
// concrete syntax. Useful in error messages and traces.
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s, 0)
	return strings.TrimSuffix(pr.b.String(), "\n")
}

// PrintExpr renders a single expression to concrete syntax.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e)
	return pr.b.String()
}

type printer struct {
	b strings.Builder
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(&pr.b, format, args...)
}

func (pr *printer) indent(n int) {
	for i := 0; i < n; i++ {
		pr.b.WriteString("  ")
	}
}

func (pr *printer) program(p *Program) {
	for _, r := range p.Records {
		pr.printf("record %s { ", r.Name)
		for _, f := range r.Fields {
			pr.printf("%s; ", f)
		}
		pr.printf("}\n")
	}
	if len(p.Records) > 0 {
		pr.printf("\n")
	}
	for _, g := range p.Globals {
		pr.printf("var %s;\n", g.Name)
	}
	if len(p.Globals) > 0 {
		pr.printf("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.printf("\n")
		}
		pr.fn(f)
	}
}

func (pr *printer) fn(f *Func) {
	pr.printf("func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
	for _, l := range f.Locals {
		pr.indent(1)
		pr.printf("var %s;\n", l.Name)
	}
	for _, s := range f.Body.Stmts {
		pr.stmt(s, 1)
	}
	pr.printf("}\n")
}

func (pr *printer) block(b *Block, depth int) {
	pr.printf("{\n")
	for _, s := range b.Stmts {
		pr.stmt(s, depth+1)
	}
	pr.indent(depth)
	pr.printf("}")
}

func (pr *printer) stmt(s Stmt, depth int) {
	switch s := s.(type) {
	case *Block:
		pr.indent(depth)
		pr.block(s, depth)
		pr.printf("\n")
	case *AssignStmt:
		pr.indent(depth)
		pr.expr(s.Lhs)
		pr.printf(" = ")
		pr.expr(s.Rhs)
		pr.printf(";\n")
	case *AssertStmt:
		pr.indent(depth)
		pr.printf("assert(")
		pr.expr(s.Cond)
		pr.printf(");\n")
	case *AssumeStmt:
		pr.indent(depth)
		pr.printf("assume(")
		pr.expr(s.Cond)
		pr.printf(");\n")
	case *AtomicStmt:
		pr.indent(depth)
		pr.printf("atomic ")
		pr.block(s.Body, depth)
		pr.printf("\n")
	case *BenignStmt:
		pr.indent(depth)
		pr.printf("benign ")
		pr.block(s.Body, depth)
		pr.printf("\n")
	case *CallStmt:
		pr.indent(depth)
		if s.Result != "" {
			pr.printf("%s = ", s.Result)
		}
		pr.expr(s.Fn)
		pr.printf("(")
		pr.exprList(s.Args)
		pr.printf(");\n")
	case *AsyncStmt:
		pr.indent(depth)
		pr.printf("async ")
		pr.expr(s.Fn)
		pr.printf("(")
		pr.exprList(s.Args)
		pr.printf(");\n")
	case *ReturnStmt:
		pr.indent(depth)
		if s.Value != nil {
			pr.printf("return ")
			pr.expr(s.Value)
			pr.printf(";\n")
		} else {
			pr.printf("return;\n")
		}
	case *IfStmt:
		pr.indent(depth)
		pr.printf("if (")
		pr.expr(s.Cond)
		pr.printf(") ")
		pr.block(s.Then, depth)
		if s.Else != nil {
			pr.printf(" else ")
			pr.block(s.Else, depth)
		}
		pr.printf("\n")
	case *WhileStmt:
		pr.indent(depth)
		pr.printf("while (")
		pr.expr(s.Cond)
		pr.printf(") ")
		pr.block(s.Body, depth)
		pr.printf("\n")
	case *ChoiceStmt:
		pr.indent(depth)
		pr.printf("choice {\n")
		for i, br := range s.Branches {
			if i > 0 {
				pr.indent(depth)
				pr.printf("[]\n")
			}
			pr.indent(depth + 1)
			pr.block(br, depth+1)
			pr.printf("\n")
		}
		pr.indent(depth)
		pr.printf("}\n")
	case *IterStmt:
		pr.indent(depth)
		pr.printf("iter ")
		pr.block(s.Body, depth)
		pr.printf("\n")
	case *SkipStmt:
		pr.indent(depth)
		pr.printf("skip;\n")
	case *TsPutStmt:
		pr.indent(depth)
		pr.printf("__ts_put(")
		pr.expr(s.Fn)
		for _, a := range s.Args {
			pr.printf(", ")
			pr.expr(a)
		}
		pr.printf(");\n")
	case *TsDispatchStmt:
		pr.indent(depth)
		pr.printf("__ts_dispatch();\n")
	default:
		pr.indent(depth)
		pr.printf("/* unknown stmt %T */;\n", s)
	}
}

func (pr *printer) exprList(es []Expr) {
	for i, e := range es {
		if i > 0 {
			pr.printf(", ")
		}
		pr.expr(e)
	}
}

func (pr *printer) expr(e Expr) {
	switch e := e.(type) {
	case *IntLit:
		pr.printf("%d", e.Value)
	case *BoolLit:
		pr.printf("%t", e.Value)
	case *FuncLit:
		pr.printf("@%s", e.Name)
	case *NullLit:
		pr.printf("null")
	case *VarExpr:
		pr.printf("%s", e.Name)
	case *AddrOfExpr:
		pr.printf("&%s", e.Name)
	case *DerefExpr:
		pr.printf("*")
		pr.atom(e.X)
	case *FieldExpr:
		pr.atom(e.X)
		pr.printf("->%s", e.Field)
	case *AddrFieldExpr:
		pr.printf("&")
		pr.atom(e.X)
		pr.printf("->%s", e.Field)
	case *UnaryExpr:
		pr.printf("%s", e.Op)
		pr.atom(e.X)
	case *BinaryExpr:
		pr.printf("(")
		pr.expr(e.X)
		pr.printf(" %s ", e.Op)
		pr.expr(e.Y)
		pr.printf(")")
	case *NewExpr:
		pr.printf("new %s", e.Record)
	case *CallExpr:
		pr.expr(e.Fn)
		pr.printf("(")
		pr.exprList(e.Args)
		pr.printf(")")
	case *TsSizeExpr:
		pr.printf("__ts_size()")
	case *RaceCellExpr:
		pr.printf("__race_cell(")
		pr.expr(e.X)
		pr.printf(")")
	default:
		pr.printf("/* unknown expr %T */", e)
	}
}

// atom prints e, parenthesizing it when it is not a primary expression, so
// that prefix operators bind visually as intended.
func (pr *printer) atom(e Expr) {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr, *DerefExpr, *CallExpr, *NewExpr:
		pr.printf("(")
		pr.expr(e)
		pr.printf(")")
	default:
		pr.expr(e)
	}
}
