// Package ast defines the abstract syntax tree for the parallel language of
// Qadeer and Wu's "KISS: Keep It Simple and Sequential" (PLDI 2004), Figure 3.
//
// The language is a procedural language with asynchronous procedure calls
// (async), atomic statements (atomic), blocking statements (assume),
// nondeterministic choice (choice) and iteration (iter), and pointer
// operations for taking the address of a variable and dereferencing.
// Following the paper ("Fields have been omitted for simplicity of
// exposition; however, KISS can handle them just as well"), the language is
// extended with record types, field access through pointers, and a `new`
// allocation expression, which the Windows-driver models require.
//
// Two statement layers coexist in the same AST:
//
//   - The surface layer produced by the parser may contain `if`/`while`
//     sugar and arbitrarily nested expressions.
//   - The core layer, produced by package lower, contains only the
//     statement and expression forms of the paper's Figure 3 (three-address
//     form); `if` and `while` have been desugared into choice/iter+assume
//     exactly as defined in Section 3 of the paper.
//
// The KISS transformation (package kiss) and the operational semantics
// (package sem) operate on the core layer only.
package ast

import "fmt"

// Pos is a source position (1-based line and column). The zero Pos means
// "no position" and is used for generated code.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p carries real position information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "<generated>"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Program is a complete parallel-language program: record declarations,
// global variable declarations, and function definitions. Execution starts
// at the function named "main".
type Program struct {
	Records []*Record
	Globals []*VarDecl
	Funcs   []*Func

	// MaxTS is the bound on the thread multiset ts in a program produced by
	// the KISS transformation (the parameter MAX of Figure 4). It is 0 and
	// meaningless for source programs, which never contain ts intrinsics.
	MaxTS int

	// RaceTarget identifies the distinguished variable r of Section 5 in a
	// program produced by the race-checking transformation. It is nil for
	// source programs and assertion-checking transforms.
	RaceTarget *RaceTarget
}

// Record declares a record (struct) type with untyped fields. All values in
// the language are dynamically typed scalars (int, bool, function name,
// pointer, null), so fields carry names only.
type Record struct {
	Name   string
	Fields []string
	Pos    Pos
}

// FieldIndex returns the index of the named field, or -1.
func (r *Record) FieldIndex(name string) int {
	for i, f := range r.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// VarDecl declares a global or local variable. Variables are untyped and
// initialized to the integer 0.
type VarDecl struct {
	Name string
	Pos  Pos
}

// Func is a function definition. Parameters and locals share a flat scope;
// there is no block scoping.
type Func struct {
	Name   string
	Params []string
	Locals []*VarDecl
	Body   *Block
	Pos    Pos
}

// RaceTarget identifies the distinguished variable r on which the
// race-checking instrumentation of Section 5 checks for conflicting
// accesses. Exactly one of the two forms is set:
//
//   - Global names a global variable, corresponding to the paper's
//     formulation where r is a variable with a static address; or
//   - Record/Field name a field of a record type, the form used for device
//     extension fields in the driver experiments.
type RaceTarget struct {
	Global string // global-variable target, or ""
	Record string // record-field target: record type name
	Field  string // record-field target: field name
}

func (t *RaceTarget) String() string {
	if t == nil {
		return "<none>"
	}
	if t.Global != "" {
		return t.Global
	}
	return t.Record + "." + t.Field
}

// FindFunc returns the function with the given name, or nil.
func (p *Program) FindFunc(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FindRecord returns the record with the given name, or nil.
func (p *Program) FindRecord(name string) *Record {
	for _, r := range p.Records {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// FindGlobal returns the global declaration with the given name, or nil.
func (p *Program) FindGlobal(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	// StmtPos returns the source position of the statement.
	StmtPos() Pos
}

// Block is a statement sequence (the paper's s1; s2, generalized to a list).
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// AssignStmt is an assignment Lhs = Rhs. In core form, Lhs is a *VarExpr,
// *DerefExpr with a variable base, or *FieldExpr with a variable base, and
// Rhs is one of the right-hand sides of Figure 3 (constant, variable,
// address-of, dereference, binary operation) or a field read, `new`, or a
// unary operation.
type AssignStmt struct {
	Lhs Expr
	Rhs Expr
	Pos Pos
}

// AssertStmt is assert(Cond): the program "goes wrong" if Cond is false.
type AssertStmt struct {
	Cond Expr
	Pos  Pos
}

// AssumeStmt is assume(Cond): execution blocks until Cond is true. In a
// sequential program a false assume blocks forever (the path is pruned); in
// a concurrent program another thread may unblock it.
type AssumeStmt struct {
	Cond Expr
	Pos  Pos
}

// AtomicStmt executes its body without interruption by other threads.
// Section 3 requires the body to be free of function calls (synchronous and
// asynchronous), returns, and nested atomics; package sema enforces this.
type AtomicStmt struct {
	Body *Block
	Pos  Pos
}

// CallStmt is a synchronous call, optionally assigning the returned value:
// Result = Fn(Args...). Result may be "" for a bare call. Fn is a *VarExpr
// (indirect call through a function-valued variable, the paper's v = v0())
// or a *FuncLit (direct call).
type CallStmt struct {
	Result string
	Fn     Expr
	Args   []Expr
	Pos    Pos
}

// AsyncStmt is an asynchronous call: async Fn(Args...) creates a new thread
// whose starting function is the value of Fn; its actions are interleaved
// with those of existing threads. Arguments are evaluated at fork time.
type AsyncStmt struct {
	Fn   Expr
	Args []Expr
	Pos  Pos
}

// ReturnStmt returns from the current function, optionally with a value
// (Value may be nil, in which case the unit value is returned).
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// IfStmt is surface sugar. Per Section 3:
//
//	if (v) s1 else s2  ==  choice{assume(v); s1 [] assume(!v); s2}
//
// Package lower performs this desugaring; core-layer programs contain no
// IfStmt nodes.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// WhileStmt is surface sugar. Per Section 3:
//
//	while (v) s  ==  iter{assume(v); s}; assume(!v)
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// ChoiceStmt executes exactly one nondeterministically chosen branch.
type ChoiceStmt struct {
	Branches []*Block
	Pos      Pos
}

// IterStmt executes its body a nondeterministic number of times (>= 0).
type IterStmt struct {
	Body *Block
	Pos  Pos
}

// SkipStmt does nothing; it abbreviates assume(true) as in Section 4.
type SkipStmt struct {
	Pos Pos
}

// BenignStmt marks the accesses syntactically inside its body as benign
// with respect to race checking: the race-checking translation emits no
// check_r/check_w calls for them (nondeterministic termination points are
// preserved). It implements the annotation proposed as future work in
// Section 6 of the paper: "we intend to deal with the problem of benign
// races by allowing the programmer to annotate an access as benign. KISS
// can then use this annotation as a directive to not instrument that
// access." It has no effect on execution semantics or assertion checking.
type BenignStmt struct {
	Body *Block
	Pos  Pos
}

// ---------------------------------------------------------------------------
// Intrinsic statements, generated only by the KISS transformation
// ---------------------------------------------------------------------------

// TsPutStmt adds a pending asynchronous call (function value plus evaluated
// arguments) to the bounded multiset ts of Section 4 ("the function put ...
// takes as argument a function name and adds it to ts"). The transformation
// guards every TsPut with a size test, so executing a TsPut on a full ts is
// a checker-internal error rather than a program error.
//
// The paper treats ts, put, get and size as special: "We introduce a fresh
// global variable ts ... There are three special functions to access and
// modify the variable ts." We mirror that by making them intrinsic forms of
// the sequential target language rather than encoding them into scalars.
type TsPutStmt struct {
	Fn   Expr
	Args []Expr
	Pos  Pos
}

// TsDispatchStmt removes a nondeterministically chosen pending call from ts
// (the paper's get) and immediately invokes it synchronously. It requires
// ts to be nonempty. This is the body of the paper's schedule loop:
//
//	f = get(); [[f]](); ...
type TsDispatchStmt struct {
	Pos Pos
}

func (*Block) stmtNode()          {}
func (*AssignStmt) stmtNode()     {}
func (*AssertStmt) stmtNode()     {}
func (*AssumeStmt) stmtNode()     {}
func (*AtomicStmt) stmtNode()     {}
func (*CallStmt) stmtNode()       {}
func (*AsyncStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()     {}
func (*IfStmt) stmtNode()         {}
func (*WhileStmt) stmtNode()      {}
func (*ChoiceStmt) stmtNode()     {}
func (*IterStmt) stmtNode()       {}
func (*SkipStmt) stmtNode()       {}
func (*BenignStmt) stmtNode()     {}
func (*TsPutStmt) stmtNode()      {}
func (*TsDispatchStmt) stmtNode() {}

func (s *Block) StmtPos() Pos          { return s.Pos }
func (s *AssignStmt) StmtPos() Pos     { return s.Pos }
func (s *AssertStmt) StmtPos() Pos     { return s.Pos }
func (s *AssumeStmt) StmtPos() Pos     { return s.Pos }
func (s *AtomicStmt) StmtPos() Pos     { return s.Pos }
func (s *CallStmt) StmtPos() Pos       { return s.Pos }
func (s *AsyncStmt) StmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos     { return s.Pos }
func (s *IfStmt) StmtPos() Pos         { return s.Pos }
func (s *WhileStmt) StmtPos() Pos      { return s.Pos }
func (s *ChoiceStmt) StmtPos() Pos     { return s.Pos }
func (s *IterStmt) StmtPos() Pos       { return s.Pos }
func (s *SkipStmt) StmtPos() Pos       { return s.Pos }
func (s *BenignStmt) StmtPos() Pos     { return s.Pos }
func (s *TsPutStmt) StmtPos() Pos      { return s.Pos }
func (s *TsDispatchStmt) StmtPos() Pos { return s.Pos }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// ExprPos returns the source position of the expression.
	ExprPos() Pos
}

// IntLit is an integer constant.
type IntLit struct {
	Value int64
	Pos   Pos
}

// BoolLit is a boolean constant (true or false).
type BoolLit struct {
	Value bool
	Pos   Pos
}

// FuncLit is a function-name constant (the paper's constants c include
// function names f).
type FuncLit struct {
	Name string
	Pos  Pos
}

// NullLit is the null pointer constant.
type NullLit struct {
	Pos Pos
}

// VarExpr references a variable (parameter, local, or global).
type VarExpr struct {
	Name string
	Pos  Pos
}

// AddrOfExpr is &v, the address of a variable.
type AddrOfExpr struct {
	Name string
	Pos  Pos
}

// DerefExpr is *X. In core form X is a *VarExpr. As an assignment
// left-hand side it denotes the cell pointed to by X.
type DerefExpr struct {
	X   Expr
	Pos Pos
}

// FieldExpr is X->Field, reading (or, as an lvalue, writing) a record field
// through a pointer. In core form X is a *VarExpr.
type FieldExpr struct {
	X     Expr
	Field string
	Pos   Pos
}

// AddrFieldExpr is &X->Field, the address of a record field. Useful for
// passing lock fields by pointer (lock_acquire(&e->lock)).
type AddrFieldExpr struct {
	X     Expr
	Field string
	Pos   Pos
}

// UnaryExpr applies Op ("!" or "-") to X.
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// BinaryExpr applies Op to X and Y. Supported operators: + - * == != < <=
// > >= && ||. The paper's primitives are + - × ==; the rest are standard
// derived comparisons and boolean connectives supported natively for
// convenience (&& and || here are non-short-circuit boolean operations on
// already-evaluated operands, which is equivalent for the effect-free
// operand forms of the core layer).
type BinaryExpr struct {
	Op  string
	X   Expr
	Y   Expr
	Pos Pos
}

// NewExpr allocates a fresh record of the named type with all fields
// initialized to the integer 0, and evaluates to a pointer to it.
type NewExpr struct {
	Record string
	Pos    Pos
}

// CallExpr is surface sugar for a call in expression position; package
// lower hoists it into a CallStmt assigning a fresh temporary. Core-layer
// programs contain no CallExpr nodes.
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Pos  Pos
}

// ---------------------------------------------------------------------------
// Intrinsic expressions, generated only by the KISS transformation
// ---------------------------------------------------------------------------

// TsSizeExpr evaluates to the number of pending calls in ts (the paper's
// size()).
type TsSizeExpr struct {
	Pos Pos
}

// RaceCellExpr evaluates to true iff its pointer operand addresses the
// distinguished race cell identified by Program.RaceTarget: the target
// global variable's cell, or any cell that is field Field of a record of
// type Record. It implements the pointer test "x == &r" of the paper's
// check_r/check_w (Section 5), lifted to record fields.
type RaceCellExpr struct {
	X   Expr
	Pos Pos
}

func (*IntLit) exprNode()        {}
func (*BoolLit) exprNode()       {}
func (*FuncLit) exprNode()       {}
func (*NullLit) exprNode()       {}
func (*VarExpr) exprNode()       {}
func (*AddrOfExpr) exprNode()    {}
func (*DerefExpr) exprNode()     {}
func (*FieldExpr) exprNode()     {}
func (*AddrFieldExpr) exprNode() {}
func (*UnaryExpr) exprNode()     {}
func (*BinaryExpr) exprNode()    {}
func (*NewExpr) exprNode()       {}
func (*CallExpr) exprNode()      {}
func (*TsSizeExpr) exprNode()    {}
func (*RaceCellExpr) exprNode()  {}

func (e *IntLit) ExprPos() Pos        { return e.Pos }
func (e *BoolLit) ExprPos() Pos       { return e.Pos }
func (e *FuncLit) ExprPos() Pos       { return e.Pos }
func (e *NullLit) ExprPos() Pos       { return e.Pos }
func (e *VarExpr) ExprPos() Pos       { return e.Pos }
func (e *AddrOfExpr) ExprPos() Pos    { return e.Pos }
func (e *DerefExpr) ExprPos() Pos     { return e.Pos }
func (e *FieldExpr) ExprPos() Pos     { return e.Pos }
func (e *AddrFieldExpr) ExprPos() Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos     { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos    { return e.Pos }
func (e *NewExpr) ExprPos() Pos       { return e.Pos }
func (e *CallExpr) ExprPos() Pos      { return e.Pos }
func (e *TsSizeExpr) ExprPos() Pos    { return e.Pos }
func (e *RaceCellExpr) ExprPos() Pos  { return e.Pos }
