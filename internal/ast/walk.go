package ast

// WalkStmts calls fn for every statement reachable from s, including s
// itself, in pre-order. If fn returns false, children of that statement are
// not visited.
func WalkStmts(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch s := s.(type) {
	case *Block:
		for _, c := range s.Stmts {
			WalkStmts(c, fn)
		}
	case *AtomicStmt:
		WalkStmts(s.Body, fn)
	case *BenignStmt:
		WalkStmts(s.Body, fn)
	case *IfStmt:
		WalkStmts(s.Then, fn)
		if s.Else != nil {
			WalkStmts(s.Else, fn)
		}
	case *WhileStmt:
		WalkStmts(s.Body, fn)
	case *ChoiceStmt:
		for _, b := range s.Branches {
			WalkStmts(b, fn)
		}
	case *IterStmt:
		WalkStmts(s.Body, fn)
	}
}

// WalkExprs calls fn for every expression appearing directly in s (not
// descending into nested statements) and, recursively, every
// subexpression. Use together with WalkStmts to visit all expressions in a
// function body.
func WalkExprs(s Stmt, fn func(Expr)) {
	visit := func(e Expr) {
		walkExpr(e, fn)
	}
	switch s := s.(type) {
	case *AssignStmt:
		visit(s.Lhs)
		visit(s.Rhs)
	case *AssertStmt:
		visit(s.Cond)
	case *AssumeStmt:
		visit(s.Cond)
	case *CallStmt:
		visit(s.Fn)
		for _, a := range s.Args {
			visit(a)
		}
	case *AsyncStmt:
		visit(s.Fn)
		for _, a := range s.Args {
			visit(a)
		}
	case *ReturnStmt:
		if s.Value != nil {
			visit(s.Value)
		}
	case *IfStmt:
		visit(s.Cond)
	case *WhileStmt:
		visit(s.Cond)
	case *TsPutStmt:
		visit(s.Fn)
		for _, a := range s.Args {
			visit(a)
		}
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *DerefExpr:
		walkExpr(e.X, fn)
	case *FieldExpr:
		walkExpr(e.X, fn)
	case *AddrFieldExpr:
		walkExpr(e.X, fn)
	case *UnaryExpr:
		walkExpr(e.X, fn)
	case *BinaryExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *CallExpr:
		walkExpr(e.Fn, fn)
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *RaceCellExpr:
		walkExpr(e.X, fn)
	}
}

// CountStmts returns the number of statements reachable from the bodies of
// all functions in p. Used for program-size metrics in the evaluation.
func CountStmts(p *Program) int {
	n := 0
	for _, f := range p.Funcs {
		WalkStmts(f.Body, func(Stmt) bool { n++; return true })
	}
	return n
}

// UsesConcurrency reports whether p contains any async calls or atomic
// statements, i.e. whether it is a genuinely concurrent program rather than
// a program in the sequential fragment of the language (Section 4: "a
// sequential program is one expressible in the parallel language without
// using asynchronous function calls and atomic statements").
func UsesConcurrency(p *Program) bool {
	found := false
	for _, f := range p.Funcs {
		WalkStmts(f.Body, func(s Stmt) bool {
			switch s.(type) {
			case *AsyncStmt, *AtomicStmt:
				found = true
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}
