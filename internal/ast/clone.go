package ast

// CloneProgram returns a deep copy of p. The KISS transformation clones its
// input so the caller's program is never mutated.
func CloneProgram(p *Program) *Program {
	out := &Program{MaxTS: p.MaxTS}
	if p.RaceTarget != nil {
		rt := *p.RaceTarget
		out.RaceTarget = &rt
	}
	for _, r := range p.Records {
		rc := &Record{Name: r.Name, Fields: append([]string(nil), r.Fields...), Pos: r.Pos}
		out.Records = append(out.Records, rc)
	}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, &VarDecl{Name: g.Name, Pos: g.Pos})
	}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, CloneFunc(f))
	}
	return out
}

// CloneFunc returns a deep copy of f.
func CloneFunc(f *Func) *Func {
	nf := &Func{
		Name:   f.Name,
		Params: append([]string(nil), f.Params...),
		Body:   CloneBlock(f.Body),
		Pos:    f.Pos,
	}
	for _, l := range f.Locals {
		nf.Locals = append(nf.Locals, &VarDecl{Name: l.Name, Pos: l.Pos})
	}
	return nf
}

// CloneBlock returns a deep copy of b.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	nb := &Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		nb.Stmts = append(nb.Stmts, CloneStmt(s))
	}
	return nb
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		return CloneBlock(s)
	case *AssignStmt:
		return &AssignStmt{Lhs: CloneExpr(s.Lhs), Rhs: CloneExpr(s.Rhs), Pos: s.Pos}
	case *AssertStmt:
		return &AssertStmt{Cond: CloneExpr(s.Cond), Pos: s.Pos}
	case *AssumeStmt:
		return &AssumeStmt{Cond: CloneExpr(s.Cond), Pos: s.Pos}
	case *AtomicStmt:
		return &AtomicStmt{Body: CloneBlock(s.Body), Pos: s.Pos}
	case *BenignStmt:
		return &BenignStmt{Body: CloneBlock(s.Body), Pos: s.Pos}
	case *CallStmt:
		return &CallStmt{Result: s.Result, Fn: CloneExpr(s.Fn), Args: cloneExprs(s.Args), Pos: s.Pos}
	case *AsyncStmt:
		return &AsyncStmt{Fn: CloneExpr(s.Fn), Args: cloneExprs(s.Args), Pos: s.Pos}
	case *ReturnStmt:
		return &ReturnStmt{Value: CloneExpr(s.Value), Pos: s.Pos}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneBlock(s.Else), Pos: s.Pos}
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body), Pos: s.Pos}
	case *ChoiceStmt:
		nc := &ChoiceStmt{Pos: s.Pos}
		for _, b := range s.Branches {
			nc.Branches = append(nc.Branches, CloneBlock(b))
		}
		return nc
	case *IterStmt:
		return &IterStmt{Body: CloneBlock(s.Body), Pos: s.Pos}
	case *SkipStmt:
		return &SkipStmt{Pos: s.Pos}
	case *TsPutStmt:
		return &TsPutStmt{Fn: CloneExpr(s.Fn), Args: cloneExprs(s.Args), Pos: s.Pos}
	case *TsDispatchStmt:
		return &TsDispatchStmt{Pos: s.Pos}
	default:
		panic("ast: CloneStmt: unknown statement type")
	}
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

// CloneExpr returns a deep copy of e. Cloning nil yields nil.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{Value: e.Value, Pos: e.Pos}
	case *BoolLit:
		return &BoolLit{Value: e.Value, Pos: e.Pos}
	case *FuncLit:
		return &FuncLit{Name: e.Name, Pos: e.Pos}
	case *NullLit:
		return &NullLit{Pos: e.Pos}
	case *VarExpr:
		return &VarExpr{Name: e.Name, Pos: e.Pos}
	case *AddrOfExpr:
		return &AddrOfExpr{Name: e.Name, Pos: e.Pos}
	case *DerefExpr:
		return &DerefExpr{X: CloneExpr(e.X), Pos: e.Pos}
	case *FieldExpr:
		return &FieldExpr{X: CloneExpr(e.X), Field: e.Field, Pos: e.Pos}
	case *AddrFieldExpr:
		return &AddrFieldExpr{X: CloneExpr(e.X), Field: e.Field, Pos: e.Pos}
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: CloneExpr(e.X), Pos: e.Pos}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), Pos: e.Pos}
	case *NewExpr:
		return &NewExpr{Record: e.Record, Pos: e.Pos}
	case *CallExpr:
		return &CallExpr{Fn: CloneExpr(e.Fn), Args: cloneExprs(e.Args), Pos: e.Pos}
	case *TsSizeExpr:
		return &TsSizeExpr{Pos: e.Pos}
	case *RaceCellExpr:
		return &RaceCellExpr{X: CloneExpr(e.X), Pos: e.Pos}
	default:
		panic("ast: CloneExpr: unknown expression type")
	}
}
