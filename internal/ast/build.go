package ast

// This file provides terse constructors for building programs
// programmatically. The KISS transformation and the synthetic driver
// generator construct large amounts of AST; these helpers keep that code
// readable. All constructed nodes carry the zero ("generated") position
// unless a position is set afterwards.

// V returns a variable reference.
func V(name string) *VarExpr { return &VarExpr{Name: name} }

// I returns an integer literal.
func I(v int64) *IntLit { return &IntLit{Value: v} }

// B returns a boolean literal.
func B(v bool) *BoolLit { return &BoolLit{Value: v} }

// Fn returns a function-name constant.
func Fn(name string) *FuncLit { return &FuncLit{Name: name} }

// Null returns the null pointer literal.
func Null() *NullLit { return &NullLit{} }

// Addr returns &name.
func Addr(name string) *AddrOfExpr { return &AddrOfExpr{Name: name} }

// Deref returns *x.
func Deref(x Expr) *DerefExpr { return &DerefExpr{X: x} }

// Field returns x->field.
func Field(x Expr, field string) *FieldExpr { return &FieldExpr{X: x, Field: field} }

// AddrField returns &x->field.
func AddrField(x Expr, field string) *AddrFieldExpr {
	return &AddrFieldExpr{X: x, Field: field}
}

// Not returns !x.
func Not(x Expr) *UnaryExpr { return &UnaryExpr{Op: "!", X: x} }

// Bin returns x op y.
func Bin(op string, x, y Expr) *BinaryExpr { return &BinaryExpr{Op: op, X: x, Y: y} }

// Eq returns x == y.
func Eq(x, y Expr) *BinaryExpr { return Bin("==", x, y) }

// Ne returns x != y.
func Ne(x, y Expr) *BinaryExpr { return Bin("!=", x, y) }

// Add returns x + y.
func Add(x, y Expr) *BinaryExpr { return Bin("+", x, y) }

// Sub returns x - y.
func Sub(x, y Expr) *BinaryExpr { return Bin("-", x, y) }

// New returns new record.
func New(record string) *NewExpr { return &NewExpr{Record: record} }

// Blk returns a block of the given statements.
func Blk(stmts ...Stmt) *Block { return &Block{Stmts: stmts} }

// Assign returns lhs = rhs.
func Assign(lhs, rhs Expr) *AssignStmt { return &AssignStmt{Lhs: lhs, Rhs: rhs} }

// Set returns name = rhs for a variable target.
func Set(name string, rhs Expr) *AssignStmt { return Assign(V(name), rhs) }

// Assert returns assert(cond).
func Assert(cond Expr) *AssertStmt { return &AssertStmt{Cond: cond} }

// Assume returns assume(cond).
func Assume(cond Expr) *AssumeStmt { return &AssumeStmt{Cond: cond} }

// Atomic returns atomic { stmts }.
func Atomic(stmts ...Stmt) *AtomicStmt { return &AtomicStmt{Body: Blk(stmts...)} }

// Benign returns benign { stmts }.
func Benign(stmts ...Stmt) *BenignStmt { return &BenignStmt{Body: Blk(stmts...)} }

// Call returns result = fn(args) (use result "" for a bare call).
func Call(result string, fn Expr, args ...Expr) *CallStmt {
	return &CallStmt{Result: result, Fn: fn, Args: args}
}

// CallDirect returns result = @fn(args) for a direct call by function name.
func CallDirect(result, fn string, args ...Expr) *CallStmt {
	return Call(result, Fn(fn), args...)
}

// Async returns async fn(args).
func Async(fn Expr, args ...Expr) *AsyncStmt { return &AsyncStmt{Fn: fn, Args: args} }

// Ret returns return value (value may be nil).
func Ret(value Expr) *ReturnStmt { return &ReturnStmt{Value: value} }

// If returns if (cond) then else els (els may be nil).
func If(cond Expr, then *Block, els *Block) *IfStmt {
	return &IfStmt{Cond: cond, Then: then, Else: els}
}

// While returns while (cond) body.
func While(cond Expr, body *Block) *WhileStmt { return &WhileStmt{Cond: cond, Body: body} }

// Choice returns choice { branches }.
func Choice(branches ...*Block) *ChoiceStmt { return &ChoiceStmt{Branches: branches} }

// Iter returns iter { body }.
func Iter(body *Block) *IterStmt { return &IterStmt{Body: body} }

// Skip returns skip.
func Skip() *SkipStmt { return &SkipStmt{} }

// NewFunc returns a function with the given name, parameters, locals and
// body statements.
func NewFunc(name string, params []string, locals []string, stmts ...Stmt) *Func {
	f := &Func{Name: name, Params: params, Body: Blk(stmts...)}
	for _, l := range locals {
		f.Locals = append(f.Locals, &VarDecl{Name: l})
	}
	return f
}
