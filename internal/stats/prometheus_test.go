package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRegistryExposition: the rendered text must be the Prometheus
// 0.0.4 format — HELP/TYPE once per family, families sorted by name,
// series sorted by labels, cumulative histogram buckets ending in +Inf.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kissd_cache_hits_total", "Cache hits.", nil)
	c.Add(3)
	g := r.Gauge("kissd_inflight_jobs", "Jobs being checked now.", nil)
	g.Set(2)
	r.GaugeFunc("kissd_queue_depth", "Jobs waiting in the queue.", nil, func() float64 { return 7 })
	h := r.Histogram("kissd_phase_seconds", "Per-phase wall time.",
		map[string]string{"phase": "check"}, []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP kissd_cache_hits_total Cache hits.\n# TYPE kissd_cache_hits_total counter\nkissd_cache_hits_total 3\n",
		"kissd_inflight_jobs 2\n",
		"kissd_queue_depth 7\n",
		`kissd_phase_seconds_bucket{phase="check",le="0.1"} 1` + "\n",
		`kissd_phase_seconds_bucket{phase="check",le="1"} 2` + "\n",
		`kissd_phase_seconds_bucket{phase="check",le="10"} 2` + "\n",
		`kissd_phase_seconds_bucket{phase="check",le="+Inf"} 3` + "\n",
		`kissd_phase_seconds_sum{phase="check"} 100.55` + "\n",
		`kissd_phase_seconds_count{phase="check"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Families must come out name-sorted.
	hits := strings.Index(out, "kissd_cache_hits_total")
	inflight := strings.Index(out, "kissd_inflight_jobs")
	queue := strings.Index(out, "kissd_queue_depth")
	if !(hits < inflight && inflight < queue) {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

// TestRegistryMultiSeriesFamily: several label sets under one name share
// a single HELP/TYPE header.
func TestRegistryMultiSeriesFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs by outcome.", map[string]string{"outcome": "safe"}).Add(5)
	r.Counter("jobs_total", "Jobs by outcome.", map[string]string{"outcome": "error"}).Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE jobs_total counter") != 1 {
		t.Errorf("TYPE header not emitted exactly once:\n%s", out)
	}
	errIdx := strings.Index(out, `jobs_total{outcome="error"} 1`)
	safeIdx := strings.Index(out, `jobs_total{outcome="safe"} 5`)
	if errIdx < 0 || safeIdx < 0 || errIdx > safeIdx {
		t.Errorf("series missing or not label-sorted:\n%s", out)
	}
}

// TestRegistryTypeConflictPanics: one name, two types is a programming
// error and must fail fast.
func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("conflicting registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "h", nil)
	r.Gauge("m", "h", nil)
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must render escaped.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "h", map[string]string{"k": "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if want := `weird{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("label not escaped, want %q in:\n%s", want, b.String())
	}
}

// TestStatsJSONRoundTrip: a full Stats record must survive
// marshal/unmarshal — the kissd client decodes cached Result.Stats off
// the wire, so Reason and PhaseTimes need working inverses.
func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{
		States:           123,
		Steps:            456,
		StatesStepped:    400,
		CompressionRatio: 3.25,
		Visited:          120,
		PeakFrontier:     40,
		PeakDepth:        17,
		Reason:           ReasonDeadline,
		Phases: PhaseTimes{
			Parse:     1500 * time.Microsecond,
			Transform: 2 * time.Millisecond,
			Check:     1250 * time.Millisecond,
		},
		StatesPerSec: 98.4,
		Parallel:     &Parallel{Workers: 4, Shards: 16, PerWorkerStates: []int{30, 30, 30, 33}, ShardContention: 7},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.States != s.States || back.Steps != s.Steps || back.Reason != s.Reason ||
		back.CompressionRatio != s.CompressionRatio || back.Parallel == nil ||
		back.Parallel.Workers != 4 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	// Phase times round through seconds floats; micro-level agreement is
	// plenty for wall-clock metrics.
	if d := back.Phases.Check - s.Phases.Check; d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("check phase drifted: %v vs %v", back.Phases.Check, s.Phases.Check)
	}
	for _, name := range []string{"", "none", "max-states", "max-steps", "deadline", "canceled"} {
		var r Reason
		if err := json.Unmarshal([]byte(`"`+name+`"`), &r); err != nil {
			t.Errorf("reason %q failed to parse: %v", name, err)
		}
	}
	var r Reason
	if err := json.Unmarshal([]byte(`"out-of-coffee"`), &r); err == nil {
		t.Error("unknown reason accepted")
	}
}
