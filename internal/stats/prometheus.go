package stats

// Prometheus text exposition. The stats package owns the checker core's
// metrics vocabulary (phases, reasons, search counters); this file adds
// the fleet-level half: a small metric registry — counters, gauges,
// gauge functions, and fixed-bucket histograms — that renders itself in
// the Prometheus text exposition format (version 0.0.4). kissd's
// /metrics endpoint is a Registry populated by the service scheduler
// with queue depth, in-flight jobs, cache hit/miss/eviction counters,
// per-phase timing histograms fed from each Result's Stats.Phases, and
// fleet-wide states/sec.
//
// The implementation is deliberately dependency-free (the repo is
// standard-library-only): no client_golang, just the subset of the text
// format the format spec requires — HELP/TYPE headers, sorted families,
// sorted label sets, cumulative le buckets with a trailing +Inf.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (d must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(d float64) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // per-bound (non-cumulative); rendered cumulatively
	infOver uint64    // observations above the last bound
	sum     float64
	count   uint64
}

// DefaultDurationBuckets suit checker phase times: sub-millisecond
// parses through minute-long bounded searches.
var DefaultDurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.infOver++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns (cumulative bucket counts incl. +Inf, sum, count).
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.bounds)+1)
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	cum[len(h.bounds)] = run + h.infOver
	return cum, h.sum, h.count
}

// sampler is anything a series can read a float from at scrape time.
type sampler func() float64

// series is one (labels, collector) pair inside a family.
type series struct {
	labels    string // pre-rendered, sorted, "{k="v",...}" or ""
	sample    sampler
	histogram *Histogram // set for histogram families
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is typically done once at startup; WriteText may be
// called concurrently with metric updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels renders a label map in sorted-key order.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// add registers one series, enforcing one type and help per family.
func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("stats: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, existing := range f.series {
		if existing.labels == s.labels {
			panic(fmt.Sprintf("stats: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: renderLabels(labels), sample: c.Value})
	return c
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), sample: g.Value})
	return g
}

// CounterFunc registers a counter whose value is read at scrape time
// from an externally maintained monotonic source (e.g. an atomic hit
// counter owned by a cache).
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	r.add(name, help, "counter", &series{labels: renderLabels(labels), sample: fn})
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural shape for derived quantities (queue depth read off a
// channel, cache hit ratio, fleet states/sec).
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), sample: fn})
}

// Histogram registers and returns a histogram series with the given
// ascending bucket upper bounds (nil selects DefaultDurationBuckets).
func (r *Registry) Histogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultDurationBuckets
	}
	h := newHistogram(bounds)
	r.add(name, help, "histogram", &series{labels: renderLabels(labels), histogram: h})
	return h
}

// formatValue renders a sample the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labeledName splices extra labels (the histogram le) into a rendered
// label string.
func labeledName(name, labels, extraKey, extraVal string) string {
	extra := extraKey + `="` + extraVal + `"`
	if labels == "" {
		return name + "{" + extra + "}"
	}
	return name + labels[:len(labels)-1] + "," + extra + "}"
}

// WriteText renders every registered family in the Prometheus text
// exposition format: families sorted by name, series sorted by label
// string, HELP and TYPE emitted once per family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		ordered := make([]*series, len(f.series))
		copy(ordered, f.series)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].labels < ordered[j].labels })
		for _, s := range ordered {
			if s.histogram != nil {
				cum, sum, count := s.histogram.snapshot()
				for i, ub := range s.histogram.bounds {
					fmt.Fprintf(&b, "%s %d\n",
						labeledName(f.name+"_bucket", s.labels, "le", formatValue(ub)), cum[i])
				}
				fmt.Fprintf(&b, "%s %d\n",
					labeledName(f.name+"_bucket", s.labels, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatValue(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.sample()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
