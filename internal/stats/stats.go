// Package stats is the observability layer of the checker core: per-phase
// wall-clock timing, search-loop metrics (states/sec, peak frontier and
// depth, visited-set size, fingerprint-audit collisions), the Reason enum
// naming which resource bound ended a search early, and a pluggable
// progress-event hook fired on a configurable state-count or time cadence
// so long corpus runs stream liveness instead of going silent.
//
// The package sits below the public facade: both model checkers
// (internal/seqcheck, internal/concheck) and the summary engine
// (internal/boolcheck) accept a *Collector and sample into it from their
// search loops; the facade assembles the final Stats record carried on
// kiss.Result, and cmd/kissbench serializes it per corpus entry under
// -json. A nil *Collector is valid everywhere and costs one predictable
// branch per sample, so the hot paths need no conditional plumbing.
package stats

import (
	"encoding/json"
	"fmt"
	"time"
)

// Phase identifies one stage of the KISS pipeline for wall-time accounting.
type Phase int

const (
	// PhaseParse: source text -> checked, lowered core form.
	PhaseParse Phase = iota
	// PhaseTransform: the Figure 4/5 sequentializing translation.
	PhaseTransform
	// PhaseCheck: compilation + model checking of the sequential program.
	PhaseCheck
	// PhaseReplay: guided replay of a reconstructed schedule (CertifyTrace).
	PhaseReplay
	// NumPhases is the number of distinct phases.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseParse:
		return "parse"
	case PhaseTransform:
		return "transform"
	case PhaseCheck:
		return "check"
	case PhaseReplay:
		return "replay"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// MarshalJSON renders the phase by name.
func (p Phase) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// Reason names the specific resource bound that ended a search early. It
// refines the checkers' ResourceBound verdict: the paper's Table 1 lumps
// every early stop into "timeout", but tuning the budget/coverage trade-off
// requires knowing *which* budget tripped.
type Reason int

const (
	// ReasonNone: the search ran to completion (Safe or Error verdict).
	ReasonNone Reason = iota
	// ReasonStates: the distinct-state budget (MaxStates) was exhausted.
	ReasonStates
	// ReasonSteps: the transition budget (MaxSteps) was exhausted.
	ReasonSteps
	// ReasonDeadline: the context's deadline expired mid-search.
	ReasonDeadline
	// ReasonCanceled: the context was canceled mid-search; the result is a
	// consistent partial result, not an error.
	ReasonCanceled
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonStates:
		return "max-states"
	case ReasonSteps:
		return "max-steps"
	case ReasonDeadline:
		return "deadline"
	case ReasonCanceled:
		return "canceled"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// MarshalJSON renders the reason by name; ReasonNone renders as "".
func (r Reason) MarshalJSON() ([]byte, error) {
	if r == ReasonNone {
		return json.Marshal("")
	}
	return json.Marshal(r.String())
}

// UnmarshalJSON parses the name form back (the inverse of MarshalJSON),
// so Stats records round-trip over the kissd wire protocol. "" and
// "none" both decode to ReasonNone.
func (r *Reason) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "", "none":
		*r = ReasonNone
	case "max-states":
		*r = ReasonStates
	case "max-steps":
		*r = ReasonSteps
	case "deadline":
		*r = ReasonDeadline
	case "canceled":
		*r = ReasonCanceled
	default:
		return fmt.Errorf("stats: unknown reason %q", s)
	}
	return nil
}

// PhaseTimes records wall-clock duration per pipeline phase.
type PhaseTimes struct {
	Parse     time.Duration
	Transform time.Duration
	Check     time.Duration
	Replay    time.Duration
}

// Total is the summed wall time across phases.
func (pt PhaseTimes) Total() time.Duration {
	return pt.Parse + pt.Transform + pt.Check + pt.Replay
}

// of returns the addressable slot for phase p (nil for out-of-range).
func (pt *PhaseTimes) of(p Phase) *time.Duration {
	switch p {
	case PhaseParse:
		return &pt.Parse
	case PhaseTransform:
		return &pt.Transform
	case PhaseCheck:
		return &pt.Check
	case PhaseReplay:
		return &pt.Replay
	}
	return nil
}

// MarshalJSON renders phase times as seconds, which is the unit the
// paper's tables report ("Time(s)").
func (pt PhaseTimes) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Parse     float64 `json:"parse_s"`
		Transform float64 `json:"transform_s"`
		Check     float64 `json:"check_s"`
		Replay    float64 `json:"replay_s"`
		Total     float64 `json:"total_s"`
	}{
		Parse:     pt.Parse.Seconds(),
		Transform: pt.Transform.Seconds(),
		Check:     pt.Check.Seconds(),
		Replay:    pt.Replay.Seconds(),
		Total:     pt.Total().Seconds(),
	})
}

// UnmarshalJSON parses the seconds form back into durations (the
// inverse of MarshalJSON, modulo sub-nanosecond float rounding), so
// Stats records survive the kissd wire protocol and cached results
// report the phase times of the run that produced them.
func (pt *PhaseTimes) UnmarshalJSON(data []byte) error {
	var w struct {
		Parse     float64 `json:"parse_s"`
		Transform float64 `json:"transform_s"`
		Check     float64 `json:"check_s"`
		Replay    float64 `json:"replay_s"`
		Total     float64 `json:"total_s"` // derived; ignored on decode
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	pt.Parse = secs(w.Parse)
	pt.Transform = secs(w.Transform)
	pt.Check = secs(w.Check)
	pt.Replay = secs(w.Replay)
	return nil
}

// Stats is the unified metrics record for one check run. The search
// metrics (states, steps, peaks, visited, collisions, reason) are
// deterministic for a given program and budget; the timing metrics
// (Phases, StatesPerSec) are wall-clock-dependent — determinism tests
// compare records after StripTiming.
type Stats struct {
	// States and Steps are distinct-state and executed-transition counts.
	// States counts *stored* states: under macro-step compression the
	// search keeps only decision-point states.
	States int `json:"states"`
	Steps  int `json:"steps"`
	// StatesStepped counts the states the search traversed, including the
	// intermediate states of folded deterministic runs that macro-step
	// compression never stored. Equal to States when compression is off.
	StatesStepped int `json:"states_stepped"`
	// CompressionRatio is StatesStepped / States — how many traversed
	// states each stored state stands for (1 with compression off). Both
	// inputs are deterministic, so StripTiming keeps it.
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	// Visited is the final visited-set size (hash-distinct states).
	Visited int `json:"visited"`
	// PeakFrontier is the high-water mark of the search frontier (DFS
	// stack or BFS queue length).
	PeakFrontier int `json:"peak_frontier"`
	// PeakDepth is the deepest trace length reached.
	PeakDepth int `json:"peak_depth"`
	// HashCollisions counts audited fingerprint collisions
	// (AuditFingerprints runs only).
	HashCollisions int `json:"hash_collisions,omitempty"`
	// Reason names the bound that ended the search early (ReasonNone when
	// the verdict is Safe or Error).
	Reason Reason `json:"reason,omitempty"`
	// Phases is per-phase wall time; StatesPerSec is States over the
	// check-phase wall time.
	Phases       PhaseTimes `json:"phases"`
	StatesPerSec float64    `json:"states_per_sec"`
	// Parallel carries the parallel-search diagnostics (nil for
	// sequential searches).
	Parallel *Parallel `json:"parallel,omitempty"`
	// Memo carries the fold-memoization table counters (nil when the
	// memo is off or never engaged).
	Memo *Memo `json:"memo,omitempty"`
	// Summary carries the call-grained procedure-summary table counters
	// (nil when summaries are off or never engaged). Kept separate from
	// Memo so the ablation can tell fold hits from summary hits.
	Summary *Summary `json:"summary,omitempty"`
	// Memory carries the memory-bounded search diagnostics (nil when
	// neither the spilling frontier nor the compact visited set engaged).
	Memory *Memory `json:"memory,omitempty"`
}

// Memory reports the memory-bounded search layer: the compact visited
// set's load and the spilling frontier's disk traffic. Every field is
// deterministic for a fixed configuration — spill decisions and filter
// inserts happen on the searches' single-threaded commit paths in commit
// order — but the record describes a *memory policy*, not the verdict,
// so StripTiming drops it along with the other diagnostics when results
// are compared across configurations.
type Memory struct {
	// VisitedMode is "exact" or "compact".
	VisitedMode string `json:"visited_mode"`
	// VisitedBytes is the compact filter's allocated size (0 in exact
	// mode); VisitedOccupancy the fraction of its bits set; VisitedFPRate
	// the estimated false-positive probability of the next lookup at that
	// occupancy.
	VisitedBytes     int64   `json:"visited_bytes,omitempty"`
	VisitedOccupancy float64 `json:"visited_occupancy,omitempty"`
	VisitedFPRate    float64 `json:"visited_fp_rate,omitempty"`
	// VisitedFalsePositives counts measured false positives against the
	// shadow exact set (AuditVisited runs only).
	VisitedFalsePositives int64 `json:"visited_false_positives,omitempty"`
	// SpillBudgetBytes is the frontier's configured in-RAM budget (0 when
	// spilling is disabled); the remaining fields are the frontier's
	// cumulative disk traffic and resident high-water mark.
	SpillBudgetBytes int64 `json:"spill_budget_bytes,omitempty"`
	SpilledBytes     int64 `json:"spilled_bytes,omitempty"`
	SpilledFrames    int64 `json:"spilled_frames,omitempty"`
	SpilledRuns      int64 `json:"spilled_runs,omitempty"`
	MergePasses      int64 `json:"merge_passes,omitempty"`
	FrontierPeakRAM  int64 `json:"frontier_peak_ram,omitempty"`
}

// Memo reports the fold-memoization table of a macro-step search: how
// many folds replayed from the table instead of re-executing, and what
// the replay saved. The verdict and every deterministic search metric
// are bit-identical with the memo on or off; the memo counters
// themselves depend on expansion order in parallel searches (which
// worker populates an entry first), so StripTiming drops the record
// along with the other scheduling-dependent diagnostics.
type Memo struct {
	// Hits and Misses count memo lookups on fold entry; HitRatio is
	// Hits/(Hits+Misses).
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	// Stores counts recorded folds; Evictions counts entries dropped by
	// the byte-budget LRU.
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	// StepsSaved is the total micro steps replayed from the table — the
	// Step invocations the search did not execute.
	StepsSaved int64 `json:"steps_saved"`
	// Entries and Bytes are the table's final size.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// AuditMismatches counts replays that failed byte-for-byte
	// verification (audit runs only; memo matching is exact, so a
	// nonzero count means a recorder/delta implementation bug was
	// caught and corrected).
	AuditMismatches int64 `json:"audit_mismatches,omitempty"`
}

// Summary reports the call-grained procedure-summary table of a
// macro-step search: how many calls replayed whole from the table, what
// the replay saved, and how deep summary composition went. Like Memo,
// the counters are scheduling-dependent in parallel searches, so
// StripTiming drops the record. For a persistent table (kissd), the
// counters are per-check deltas; Entries/Bytes describe the table at
// check end.
type Summary struct {
	// Hits and Misses count summary lookups at call sites inside folds;
	// HitRatio is Hits/(Hits+Misses).
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	// Stores counts recorded call segments; Evictions counts entries
	// dropped by the byte-budget LRU.
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	// StepsSaved is the total micro steps replayed from the table.
	StepsSaved int64 `json:"steps_saved"`
	// Composed counts hits whose replay was fed into an enclosing
	// recording (summary composition); MaxDepth is the deepest open-layer
	// stack seen while recording.
	Composed int64 `json:"composed"`
	MaxDepth int64 `json:"max_depth"`
	// Entries and Bytes are the table's final size.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// AuditMismatches counts replays that failed byte-for-byte
	// re-execution verification (audit runs only).
	AuditMismatches int64 `json:"audit_mismatches,omitempty"`
}

// Parallel reports the diagnostics of a multi-worker frontier search:
// how the work spread over the workers and how hard they fought over the
// sharded visited set. The verdict and the search metrics above are
// deterministic across worker counts; the per-worker attribution and the
// contention counter are scheduling-dependent, so StripTiming drops the
// whole record.
type Parallel struct {
	// Workers is the worker-pool size the search ran with.
	Workers int `json:"workers"`
	// Shards is the visited-set shard count.
	Shards int `json:"shards"`
	// PerWorkerStates counts the fresh states each worker discovered —
	// a load-balance diagnostic (scheduling-dependent).
	PerWorkerStates []int `json:"per_worker_states"`
	// ShardContention counts visited-set probes that found their shard
	// lock held by another worker.
	ShardContention int64 `json:"shard_contention"`
}

// StripTiming zeroes the wall-clock-dependent fields, leaving only the
// deterministic search metrics. Determinism tests (same corpus, different
// worker counts or a rerun after cancellation) compare stripped records.
func (s *Stats) StripTiming() {
	s.Phases = PhaseTimes{}
	s.StatesPerSec = 0
	s.Parallel = nil
	s.Memo = nil
	s.Summary = nil
	s.Memory = nil
}

// BoundName renders the tripped bound for human-readable results; a zero
// Reason (results built before the bound tracking, or by hand) falls back
// to the generic word. Both checkers and the facade share this spelling.
func BoundName(r Reason) string {
	if r == ReasonNone {
		return "budget"
	}
	return r.String()
}

// Event is one progress sample delivered to a registered hook. Events
// stream from inside the search loop on the configured cadence; a final
// event (Final=true) fires when the check phase completes, so a hook is
// guaranteed at least one event per run.
type Event struct {
	// Phase is the pipeline stage the sample was taken in (always
	// PhaseCheck for cadence events).
	Phase Phase
	// Elapsed is wall time since the check phase began.
	Elapsed time.Duration
	// Search counters at sample time.
	States   int
	Steps    int
	Frontier int
	Depth    int
	Visited  int
	// StatesPerSec is the average rate since the check phase began.
	StatesPerSec float64
	// Final marks the event fired at phase completion.
	Final bool
}

// Default progress cadence: whichever of the two thresholds trips first.
const (
	DefaultEveryStates = 25000
	DefaultEvery       = 250 * time.Millisecond
)

// timeCheckStride bounds how often Sample consults the wall clock: the
// time-based cadence is only evaluated every this many samples, keeping
// time.Now out of the per-state hot path.
const timeCheckStride = 4096

// Collector accumulates per-phase wall times and streams progress events.
// A nil *Collector is valid: every method is a no-op, so checkers sample
// unconditionally. A Collector instruments a single run and is not safe
// for concurrent use; corpus runners create one per field check.
type Collector struct {
	progress    func(Event)
	everyStates int
	every       time.Duration

	phases  PhaseTimes
	started [NumPhases]time.Time

	checkStart time.Time
	nextStates int
	sinceTime  int
	nextTime   time.Time
}

// NewCollector builds a collector delivering progress events to hook (nil
// for timing-only collection) on the given cadence: an event fires when
// the state count grows by everyStates or when every elapses, whichever
// comes first. Non-positive cadence values fall back to DefaultEveryStates
// and DefaultEvery.
func NewCollector(hook func(Event), everyStates int, every time.Duration) *Collector {
	if everyStates <= 0 {
		everyStates = DefaultEveryStates
	}
	if every <= 0 {
		every = DefaultEvery
	}
	return &Collector{progress: hook, everyStates: everyStates, every: every}
}

// Start begins timing phase p. Starting PhaseCheck also resets the
// progress cadence.
func (c *Collector) Start(p Phase) {
	if c == nil {
		return
	}
	now := time.Now()
	c.started[p] = now
	if p == PhaseCheck {
		c.checkStart = now
		c.nextStates = c.everyStates
		c.sinceTime = 0
		c.nextTime = now.Add(c.every)
	}
}

// End records the elapsed wall time for phase p (accumulating across
// repeated Start/End pairs).
func (c *Collector) End(p Phase) {
	if c == nil {
		return
	}
	if slot := c.phases.of(p); slot != nil && !c.started[p].IsZero() {
		*slot += time.Since(c.started[p])
		c.started[p] = time.Time{}
	}
}

// AddPhase accumulates an externally measured duration into phase p (used
// when the phase ran outside the collector's lifetime, e.g. parse time
// recorded on the Program before a Config was built).
func (c *Collector) AddPhase(p Phase, d time.Duration) {
	if c == nil {
		return
	}
	if slot := c.phases.of(p); slot != nil {
		*slot += d
	}
}

// Sample is the search loop's per-iteration probe. It fires a progress
// event when the state-count or time cadence has been reached. The fast
// path (no event due) is a few integer compares.
func (c *Collector) Sample(states, steps, frontier, depth, visited int) {
	if c == nil || c.progress == nil {
		return
	}
	due := states >= c.nextStates
	if !due {
		if c.sinceTime++; c.sinceTime < timeCheckStride {
			return
		}
		c.sinceTime = 0
		due = time.Now().After(c.nextTime)
		if !due {
			return
		}
	}
	c.emit(states, steps, frontier, depth, visited, false)
}

// emit fires one progress event and advances both cadences.
func (c *Collector) emit(states, steps, frontier, depth, visited int, final bool) {
	now := time.Now()
	elapsed := now.Sub(c.checkStart)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(states) / secs
	}
	c.nextStates = states + c.everyStates
	c.sinceTime = 0
	c.nextTime = now.Add(c.every)
	c.progress(Event{
		Phase:        PhaseCheck,
		Elapsed:      elapsed,
		States:       states,
		Steps:        steps,
		Frontier:     frontier,
		Depth:        depth,
		Visited:      visited,
		StatesPerSec: rate,
		Final:        final,
	})
}

// Finalize copies the collector's phase times into s, derives
// StatesPerSec from the check-phase wall time, and — when a progress hook
// is registered — fires the final event carrying s's counters. Call it
// after End(PhaseCheck) with the search counters already filled in.
func (c *Collector) Finalize(s *Stats) {
	if c == nil {
		return
	}
	s.Phases = c.phases
	if secs := c.phases.Check.Seconds(); secs > 0 {
		s.StatesPerSec = float64(s.States) / secs
	}
	if c.progress != nil {
		c.progress(Event{
			Phase:        PhaseCheck,
			Elapsed:      c.phases.Check,
			States:       s.States,
			Steps:        s.Steps,
			Visited:      s.Visited,
			Depth:        s.PeakDepth,
			StatesPerSec: s.StatesPerSec,
			Final:        true,
		})
	}
}
