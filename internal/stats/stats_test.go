package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilCollectorIsSafe: every method must be a no-op on a nil receiver,
// since the checkers sample unconditionally.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Start(PhaseCheck)
	c.Sample(1, 1, 1, 1, 1)
	c.End(PhaseCheck)
	c.AddPhase(PhaseParse, time.Second)
	c.Finalize(&Stats{})
}

// TestStateCadence: with a state cadence of N, events fire roughly every N
// states, plus the final event.
func TestStateCadence(t *testing.T) {
	var events []Event
	c := NewCollector(func(e Event) { events = append(events, e) }, 10, time.Hour)
	c.Start(PhaseCheck)
	for states := 1; states <= 35; states++ {
		c.Sample(states, states*2, 3, 4, states)
	}
	c.End(PhaseCheck)
	if len(events) != 3 {
		t.Fatalf("got %d cadence events (want 3 at states 10/20/30): %+v", len(events), events)
	}
	for i, want := range []int{10, 20, 30} {
		if events[i].States != want {
			t.Errorf("event %d at states=%d, want %d", i, events[i].States, want)
		}
		if events[i].Final {
			t.Errorf("cadence event %d marked final", i)
		}
		if events[i].Phase != PhaseCheck {
			t.Errorf("event %d phase = %v", i, events[i].Phase)
		}
	}
	st := &Stats{States: 35, Steps: 70, Visited: 35}
	c.Finalize(st)
	if events[len(events)-1].Final != true {
		t.Error("Finalize did not fire a final event")
	}
	if got := events[len(events)-1].States; got != 35 {
		t.Errorf("final event states = %d, want 35", got)
	}
}

// TestFinalEventAlwaysFires: even when no cadence threshold is reached,
// the hook sees exactly one (final) event.
func TestFinalEventAlwaysFires(t *testing.T) {
	var events []Event
	c := NewCollector(func(e Event) { events = append(events, e) }, 1000000, time.Hour)
	c.Start(PhaseCheck)
	c.Sample(5, 5, 1, 1, 5)
	c.End(PhaseCheck)
	c.Finalize(&Stats{States: 5, Steps: 5, Visited: 5})
	if len(events) != 1 || !events[0].Final {
		t.Fatalf("want exactly one final event, got %+v", events)
	}
}

// TestPhaseTiming: Start/End accumulate into the right slots and Finalize
// copies them and derives the rate.
func TestPhaseTiming(t *testing.T) {
	c := NewCollector(nil, 0, 0)
	c.Start(PhaseTransform)
	time.Sleep(2 * time.Millisecond)
	c.End(PhaseTransform)
	c.Start(PhaseCheck)
	time.Sleep(2 * time.Millisecond)
	c.End(PhaseCheck)
	c.AddPhase(PhaseParse, 5*time.Millisecond)

	st := &Stats{States: 1000}
	c.Finalize(st)
	if st.Phases.Transform <= 0 || st.Phases.Check <= 0 {
		t.Errorf("phase times not recorded: %+v", st.Phases)
	}
	if st.Phases.Parse != 5*time.Millisecond {
		t.Errorf("AddPhase parse time = %v", st.Phases.Parse)
	}
	if st.StatesPerSec <= 0 {
		t.Errorf("states/sec not derived: %v", st.StatesPerSec)
	}
	if tot := st.Phases.Total(); tot < st.Phases.Parse+st.Phases.Check {
		t.Errorf("total %v inconsistent", tot)
	}
}

// TestStripTiming: only the wall-clock-dependent fields are zeroed.
func TestStripTiming(t *testing.T) {
	s := Stats{
		States: 7, Steps: 9, Visited: 7, PeakFrontier: 3, PeakDepth: 4,
		Reason: ReasonStates, StatesPerSec: 123,
		Phases: PhaseTimes{Check: time.Second},
	}
	s.StripTiming()
	if s.StatesPerSec != 0 || s.Phases != (PhaseTimes{}) {
		t.Errorf("timing not stripped: %+v", s)
	}
	if s.States != 7 || s.Reason != ReasonStates || s.PeakFrontier != 3 {
		t.Errorf("deterministic fields clobbered: %+v", s)
	}
}

func TestReasonAndPhaseStrings(t *testing.T) {
	cases := map[string]string{
		ReasonNone.String():     "none",
		ReasonStates.String():   "max-states",
		ReasonSteps.String():    "max-steps",
		ReasonDeadline.String(): "deadline",
		ReasonCanceled.String(): "canceled",
		PhaseParse.String():     "parse",
		PhaseTransform.String(): "transform",
		PhaseCheck.String():     "check",
		PhaseReplay.String():    "replay",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestStatsJSON: the serialized record carries the field names the
// EXPERIMENTS.md metrics guide documents, durations in seconds, and the
// reason by name.
func TestStatsJSON(t *testing.T) {
	s := Stats{
		States: 40001, Steps: 50000, Visited: 40001,
		StatesStepped: 120003, CompressionRatio: 3.0,
		PeakFrontier: 12, PeakDepth: 90, Reason: ReasonStates,
		Phases:       PhaseTimes{Check: 1500 * time.Millisecond},
		StatesPerSec: 26667.3,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"states":40001`, `"peak_frontier":12`, `"peak_depth":90`,
		`"visited":40001`, `"reason":"max-states"`, `"check_s":1.5`,
		`"states_per_sec":`, `"total_s":1.5`,
		`"states_stepped":120003`, `"compression_ratio":3`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON record missing %s:\n%s", key, data)
		}
	}
	// ReasonNone must be omitted entirely (omitempty on the zero value).
	s2 := Stats{States: 1}
	data2, _ := json.Marshal(s2)
	if strings.Contains(string(data2), "reason") {
		t.Errorf("ReasonNone serialized: %s", data2)
	}
}
