package visited

import (
	"math/rand"
	"testing"
)

// TestCompactNoFalseNegatives: everything inserted is found again — the
// filter can only err in the "seen" direction.
func TestCompactNoFalseNegatives(t *testing.T) {
	c := NewCompact(1 << 20)
	rng := rand.New(rand.NewSource(1))
	fps := make([]uint64, 20000)
	for i := range fps {
		fps[i] = rng.Uint64()
		c.Seen(fps[i])
	}
	for _, fp := range fps {
		if !c.Contains(fp) {
			t.Fatalf("false negative for %x", fp)
		}
		if !c.Seen(fp) {
			t.Fatalf("Seen(%x) false after insert", fp)
		}
	}
}

// TestCompactLenAndOccupancy: Len counts admitted fingerprints, and at
// reasonable load the false-positive estimate stays small.
func TestCompactLenAndOccupancy(t *testing.T) {
	c := NewCompact(1 << 20) // 8 Mbit for 100k states ≈ 84 bits/state
	rng := rand.New(rand.NewSource(2))
	n := 100000
	for i := 0; i < n; i++ {
		c.Seen(rng.Uint64())
	}
	if c.Len() > n || c.Len() < n*99/100 {
		t.Fatalf("Len = %d, want ≈ %d", c.Len(), n)
	}
	if occ := c.Occupancy(); occ <= 0 || occ >= 0.5 {
		t.Fatalf("occupancy = %v, want (0, 0.5)", occ)
	}
	if fp := c.EstFPRate(); fp > 0.01 {
		t.Fatalf("estimated FP rate %v too high for this load", fp)
	}
	if c.SizeBytes() > 1<<20 || c.SizeBytes() < 1<<19 {
		t.Fatalf("SizeBytes = %d, want within (512KiB, 1MiB]", c.SizeBytes())
	}
}

// TestCompactTinyFilterSaturates: a deliberately undersized filter
// reports high occupancy and a nonzero measured false-positive count
// under audit — the failure mode is visible, not silent.
func TestAuditedCountsFalsePositives(t *testing.T) {
	a := NewAudited(1 << 8) // one or two blocks: saturates immediately
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a.Seen(rng.Uint64())
	}
	if a.FalsePositives() == 0 {
		t.Fatal("saturated filter reported zero false positives under audit")
	}
	if a.Len() >= 5000 {
		t.Fatalf("Len = %d: saturated filter cannot have admitted everything", a.Len())
	}
	// And a healthy filter on the same stream has (almost surely) none.
	h := NewAudited(1 << 20)
	rng = rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Seen(rng.Uint64())
	}
	if h.FalsePositives() != 0 {
		t.Fatalf("healthy filter reported %d false positives on 5000 inserts", h.FalsePositives())
	}
}

// TestStoreInterface: all three variants satisfy Store.
func TestStoreInterface(t *testing.T) {
	for _, s := range []Store{New(0), NewCompact(1 << 16), NewAudited(1 << 16)} {
		if s.Seen(42) {
			t.Fatalf("%T: fresh fingerprint reported seen", s)
		}
		if !s.Contains(42) || !s.Seen(42) {
			t.Fatalf("%T: inserted fingerprint not found", s)
		}
		if s.Len() != 1 {
			t.Fatalf("%T: Len = %d, want 1", s, s.Len())
		}
	}
}
