// Package visited provides the sharded visited set shared by the parallel
// state-space searches (seqcheck, concheck).
//
// The set maps 64-bit state fingerprints to "seen". Sharding by fingerprint
// bits lets N workers deduplicate concurrently with contention limited to
// workers that happen to land on the same shard at the same instant; each
// shard is an ordinary map[uint64]struct{} behind its own mutex, so the
// single-worker fast path costs one uncontended lock more than a plain map.
package visited

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when New is given n <= 0. 64 keeps
// per-shard collision probability negligible for worker counts up to the
// tens while costing only ~64 empty maps on small searches.
const DefaultShards = 64

type shard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	// Pad to a cache line so neighbouring shard locks do not false-share.
	_ [40]byte
}

// Set is a concurrency-safe set of uint64 fingerprints, sharded to reduce
// lock contention. The zero value is not usable; call New.
type Set struct {
	shards     []shard
	mask       uint64
	contention atomic.Int64
}

// New returns a Set with the given shard count rounded up to a power of
// two; n <= 0 selects DefaultShards.
func New(n int) *Set {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Set{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// shardFor folds the high fingerprint bits into the low ones before
// masking, so shard choice is not at the mercy of low-bit hash quality.
func (s *Set) shardFor(fp uint64) *shard {
	return &s.shards[(fp^fp>>32)&s.mask]
}

// Seen atomically tests-and-inserts fp, reporting whether it was already
// present. This is the only operation workers call on the hot path.
func (s *Set) Seen(fp uint64) bool {
	sh := s.shardFor(fp)
	if !sh.mu.TryLock() {
		// Another worker holds this shard: count the collision (the
		// stats layer reports it as shard contention) and queue up.
		s.contention.Add(1)
		sh.mu.Lock()
	}
	_, ok := sh.m[fp]
	if !ok {
		sh.m[fp] = struct{}{}
	}
	sh.mu.Unlock()
	return ok
}

// Contains reports whether fp is in the set without inserting it. The
// parallel searches use it as the workers' prefilter: during an expansion
// round the set is frozen (only the commit loop inserts, between rounds),
// so a Contains answer is deterministic for a given round.
func (s *Set) Contains(fp uint64) bool {
	sh := s.shardFor(fp)
	if !sh.mu.TryLock() {
		s.contention.Add(1)
		sh.mu.Lock()
	}
	_, ok := sh.m[fp]
	sh.mu.Unlock()
	return ok
}

// Len returns the total number of fingerprints inserted. It takes every
// shard lock, so it is meant for per-level sampling, not per-state calls.
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the (power-of-two) shard count.
func (s *Set) Shards() int { return len(s.shards) }

// Contention returns how many Seen calls found their shard lock held by
// another worker — a direct measure of dedup contention for the stats
// layer. It is monotone and cheap to read.
func (s *Set) Contention() int64 { return s.contention.Load() }
