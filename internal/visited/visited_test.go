package visited

import (
	"sync"
	"testing"
)

func TestSeenBasic(t *testing.T) {
	s := New(8)
	if s.Seen(42) {
		t.Error("fresh fingerprint reported as seen")
	}
	if !s.Seen(42) {
		t.Error("repeated fingerprint reported as fresh")
	}
	if got := s.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

func TestShardRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	}
	for _, tc := range cases {
		if got := New(tc.in).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestConcurrentExactlyOnce: N workers race to insert the same fingerprints;
// each fingerprint must be reported fresh exactly once overall.
func TestConcurrentExactlyOnce(t *testing.T) {
	const workers = 8
	const fps = 10000
	s := New(16)
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < fps; i++ {
				// Mix so consecutive values spread across shards.
				fp := i * 0x9e3779b97f4a7c15
				if !s.Seen(fp) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range fresh {
		total += n
	}
	if total != fps {
		t.Errorf("total fresh insertions = %d, want %d", total, fps)
	}
	if got := s.Len(); got != fps {
		t.Errorf("Len = %d, want %d", got, fps)
	}
	if s.Contention() < 0 {
		t.Error("negative contention counter")
	}
}

func TestShardSpread(t *testing.T) {
	s := New(16)
	for i := uint64(0); i < 1<<12; i++ {
		s.Seen(i * 0x9e3779b97f4a7c15)
	}
	// Every shard should hold something for a well-mixed input.
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n := len(s.shards[i].m)
		s.shards[i].mu.Unlock()
		if n == 0 {
			t.Errorf("shard %d empty after 4096 well-mixed inserts", i)
		}
	}
}
