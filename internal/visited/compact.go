package visited

import "sync/atomic"

// The compact visited set: a blocked Bloom filter over the 64-bit state
// fingerprints, ~8–16 bits per state instead of the exact set's 64-bit
// key plus map overhead. Its only failure mode is a false "seen" — a
// fresh state mistaken for a visited one and pruned. That is the same
// direction of unsoundness as 64-bit fingerprint hashing and as the KISS
// reduction itself (missed states, never false alarms), and the Audited
// wrapper quantifies it against a shadow exact set on small runs.
//
// Layout: the filter is an array of 512-bit (cache-line) blocks. A
// fingerprint selects one block with its high bits and derives
// compactProbes bit positions inside that block from its two 32-bit
// halves (the Kirsch–Mitzenmacher double-hashing scheme), so one lookup
// touches one cache line. Inserts happen only on the searches'
// single-threaded commit paths and lookups either there or during
// frozen-set expansion rounds, exactly like the exact Set's usage — the
// rounds' start/finish barriers order every write before every read, so
// the plain (non-atomic) word operations are race-free.

// Store is the visited-set interface the search engines program against;
// *Set (exact), *Compact, and *Audited implement it.
type Store interface {
	// Seen tests-and-inserts fp, reporting whether it was already present.
	Seen(fp uint64) bool
	// Contains reports membership without inserting (the frozen-round
	// prefilter).
	Contains(fp uint64) bool
	// Len returns the number of distinct fingerprints admitted.
	Len() int
	// Shards returns the shard count (1 for the unsharded variants).
	Shards() int
	// Contention returns the sharded set's lock-contention count (0 for
	// the unsharded variants).
	Contention() int64
}

// DefaultCompactBytes sizes the filter when no memory budget is given:
// 64 MiB ≈ 512 Mbit, comfortably past 12 bits/state for tens of millions
// of states.
const DefaultCompactBytes = 64 << 20

// compactProbes is the number of bits set per fingerprint. With the
// filter sized at 8–16 bits/state, 8 probes keep the false-positive rate
// in the 10⁻³–10⁻² range at full occupancy.
const compactProbes = 8

// blockWords is the 512-bit block size in 64-bit words (one cache line).
const blockWords = 8

// Compact is the blocked-Bloom visited set. Not safe for unsynchronized
// concurrent mutation; see the package note above for why the searches'
// barrier discipline makes it race-free there.
type Compact struct {
	words     []uint64
	blockMask uint64 // number of blocks - 1 (power of two)
	count     int    // distinct fingerprints admitted (Seen == false)
	setBits   int64  // bits actually flipped on, for occupancy stats
}

// NewCompact returns a filter of approximately `bytes` bytes, rounded
// down to a power-of-two block count (minimum one block); bytes <= 0
// selects DefaultCompactBytes.
func NewCompact(bytes int64) *Compact {
	if bytes <= 0 {
		bytes = DefaultCompactBytes
	}
	blocks := uint64(1)
	for blocks*2*blockWords*8 <= uint64(bytes) {
		blocks *= 2
	}
	return &Compact{
		words:     make([]uint64, blocks*blockWords),
		blockMask: blocks - 1,
	}
}

// probe computes the block base word index and the two 32-bit halves the
// in-block probe sequence is derived from.
func (c *Compact) probe(fp uint64) (base uint64, h1, h2 uint32) {
	// High bits pick the block (low bits drive the in-block sequence);
	// fold so that filters smaller than 2^32 blocks still see the top
	// bits.
	block := (fp >> 32) & c.blockMask
	h1 = uint32(fp)
	h2 = uint32(fp>>21)*2654435761 | 1 // odd, so the sequence hits distinct bits
	return block * blockWords, h1, h2
}

// Seen tests-and-inserts fp. A true return may be a false positive; a
// false return is always correct (the state really is new).
func (c *Compact) Seen(fp uint64) bool {
	base, h1, h2 := c.probe(fp)
	present := true
	h := h1
	for i := 0; i < compactProbes; i++ {
		bit := uint64(h) & 511
		w := base + bit>>6
		mask := uint64(1) << (bit & 63)
		if c.words[w]&mask == 0 {
			present = false
			c.words[w] |= mask
			c.setBits++
		}
		h += h2
	}
	if present {
		return true
	}
	c.count++
	return false
}

// Contains reports membership without inserting.
func (c *Compact) Contains(fp uint64) bool {
	base, h1, h2 := c.probe(fp)
	h := h1
	for i := 0; i < compactProbes; i++ {
		bit := uint64(h) & 511
		if c.words[base+bit>>6]&(uint64(1)<<(bit&63)) == 0 {
			return false
		}
		h += h2
	}
	return true
}

// Len returns the number of distinct fingerprints admitted (Seen calls
// that returned false). Unlike the exact set this undercounts by exactly
// the false positives — which is what makes the search's States counter
// and the visited counter agree in compact mode.
func (c *Compact) Len() int { return c.count }

// Shards returns 1: the filter is a single array.
func (c *Compact) Shards() int { return 1 }

// Contention returns 0: there are no locks.
func (c *Compact) Contention() int64 { return 0 }

// SizeBytes returns the filter's allocated size.
func (c *Compact) SizeBytes() int64 { return int64(len(c.words)) * 8 }

// Occupancy returns the fraction of filter bits set, the load figure the
// stats layer reports.
func (c *Compact) Occupancy() float64 {
	if len(c.words) == 0 {
		return 0
	}
	return float64(c.setBits) / float64(len(c.words)*64)
}

// EstFPRate estimates the false-positive probability of the next lookup
// as occupancy^k — exact for an ideal Bloom filter, a close upper bound
// for the blocked layout at the occupancies the budgets produce.
func (c *Compact) EstFPRate() float64 {
	p := c.Occupancy()
	r := 1.0
	for i := 0; i < compactProbes; i++ {
		r *= p
	}
	return r
}

// Audited wraps a Compact filter with a shadow exact set and counts real
// false positives: Seen answers exactly as the bare filter would (so an
// audited run explores the compact search's state set, not the exact
// one), while the shadow set records the truth. Meant for tests and
// small calibration runs — it restores the exact set's full memory cost.
type Audited struct {
	c     *Compact
	exact map[uint64]struct{}
	// fps is atomic: Contains runs on parallel expansion workers (the
	// shadow map is frozen then, but the counter is not).
	fps atomic.Int64
}

// NewAudited returns an audited compact set of approximately `bytes`
// bytes.
func NewAudited(bytes int64) *Audited {
	return &Audited{c: NewCompact(bytes), exact: map[uint64]struct{}{}}
}

// Seen behaves exactly like the underlying Compact filter's Seen,
// additionally counting answers that an exact set would have given
// differently.
func (a *Audited) Seen(fp uint64) bool {
	hit := a.c.Seen(fp)
	_, truth := a.exact[fp]
	if !truth {
		a.exact[fp] = struct{}{}
	}
	if hit && !truth {
		a.fps.Add(1)
	}
	return hit
}

// Contains behaves like the filter's Contains, counting false positives.
func (a *Audited) Contains(fp uint64) bool {
	hit := a.c.Contains(fp)
	if hit {
		if _, truth := a.exact[fp]; !truth {
			a.fps.Add(1)
		}
	}
	return hit
}

// Len returns the filter's admitted count (see Compact.Len).
func (a *Audited) Len() int { return a.c.Len() }

// Shards returns 1.
func (a *Audited) Shards() int { return 1 }

// Contention returns 0.
func (a *Audited) Contention() int64 { return 0 }

// FalsePositives returns how many filter answers disagreed with the
// shadow exact set.
func (a *Audited) FalsePositives() int64 { return a.fps.Load() }

// Filter exposes the underlying compact filter (for stats extraction).
func (a *Audited) Filter() *Compact { return a.c }
