package sema

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func checkSrc(t *testing.T, src string, mode Mode) error {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p, mode)
}

func TestValidProgram(t *testing.T) {
	err := checkSrc(t, `
record R { f; }
var g;
func helper(a) {
  var t;
  t = a->f;
  atomic { g = t; assume(g == t); }
  return t;
}
func main() {
  var e;
  e = new R;
  async helper(e);
  g = helper(e);
}
`, Source)
	if err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	err := checkSrc(t, src, Source)
	if err == nil {
		t.Errorf("accepted invalid program; want error containing %q\n%s", fragment, src)
		return
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err.Error(), fragment)
	}
}

func TestMissingMain(t *testing.T) {
	wantError(t, `func f() { return; }`, "no main")
}

func TestMainWithParams(t *testing.T) {
	wantError(t, `func main(x) { return; }`, "no parameters")
}

func TestDuplicates(t *testing.T) {
	wantError(t, `var g; var g; func main() { skip; }`, "duplicate global")
	wantError(t, `func f() { return; } func f() { return; } func main() { skip; }`, "duplicate function")
	wantError(t, `record R { f; f; } func main() { skip; }`, "duplicate field")
	wantError(t, `func main() { skip; } func f(a, a) { return; }`, "duplicate parameter")
	wantError(t, `record R { x; } record R { y; } func main() { skip; }`, "duplicate record")
}

func TestUndeclared(t *testing.T) {
	wantError(t, `func main() { x = 1; }`, "undeclared variable")
	wantError(t, `func main() { var x; x = y; }`, "undeclared variable")
	wantError(t, `func main() { var x; x = new R; }`, "undefined record")
	wantError(t, `var e; func main() { e = e->nosuch; }`, "unknown field")
	wantError(t, `func main() { var f; f = @nosuch; }`, "undefined function")
}

// Section 3: "we also require that the statement s in atomic{s} is free of
// function calls (both synchronous and asynchronous), return statements,
// and nested atomic statements."
func TestAtomicRestrictions(t *testing.T) {
	wantError(t, `func f() { return; } func main() { atomic { f(); } }`, "call inside atomic")
	wantError(t, `func f() { return; } func main() { atomic { async f(); } }`, "async call inside atomic")
	wantError(t, `func main() { atomic { return; } }`, "return inside atomic")
	wantError(t, `func main() { atomic { atomic { skip; } } }`, "nested atomic")
}

func TestAtomicAllowsAssumeAndChoice(t *testing.T) {
	err := checkSrc(t, `
var l;
func main() {
  atomic { assume(l == 0); l = 1; }
  atomic { choice { { l = 0; } [] { l = 2; } } }
}
`, Source)
	if err != nil {
		t.Errorf("legal atomic bodies rejected: %v", err)
	}
}

func TestArityChecking(t *testing.T) {
	wantError(t, `func f(a, b) { return; } func main() { f(1); }`, "want 2")
	wantError(t, `func f() { return; } func main() { async f(1); }`, "want 0")
}

func TestCallInAssumeRejected(t *testing.T) {
	wantError(t, `func f() { return 1; } func main() { assume(f() == 1); }`, "assume")
}

func TestIntrinsicsRejectedInSource(t *testing.T) {
	wantError(t, `func f() { return; } func main() { __ts_put(@f); }`, "__ts_put")
	wantError(t, `func main() { __ts_dispatch(); }`, "__ts_dispatch")
	wantError(t, `func main() { var n; n = __ts_size(); }`, "__ts_size")
	wantError(t, `var g; func main() { var b; b = __race_cell(&g); }`, "__race_cell")
}

func TestTransformedModeRejectsConcurrency(t *testing.T) {
	src := `func f() { return; } func main() { async f(); }`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, Transformed); err == nil {
		t.Error("Transformed mode accepted an async call")
	}
	src2 := `var g; func main() { atomic { g = 1; } }`
	p2, err := parser.Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p2, Transformed); err == nil {
		t.Error("Transformed mode accepted an atomic statement")
	}
}

func TestEmptyChoiceRejected(t *testing.T) {
	// The parser cannot produce an empty choice, so construct it level.
	p, err := parser.Parse(`func main() { skip; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, Source); err != nil {
		t.Fatalf("baseline: %v", err)
	}
}

func TestErrorListAggregates(t *testing.T) {
	err := checkSrc(t, `func main() { x = 1; y = 2; }`, Source)
	if err == nil {
		t.Fatal("want errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T, want ErrorList", err)
	}
	if len(list) < 2 {
		t.Errorf("got %d errors, want at least 2 (both x and y)", len(list))
	}
}
