// Package sema checks well-formedness of parallel-language programs.
//
// Beyond ordinary scope and arity checking, it enforces the restriction of
// Section 3 of the KISS paper: the body of an atomic statement must be free
// of function calls (both synchronous and asynchronous), return statements,
// and nested atomic statements. This restriction is what makes the
// translation rule [[atomic{s}]] = schedule(); choice{skip [] RAISE}; s
// correct — the body needs no internal instrumentation because no context
// switch may occur inside it.
package sema

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Mode configures which checks apply.
type Mode int

const (
	// Source checks a user-written concurrent program: KISS intrinsics
	// (__ts_put, __ts_dispatch, __ts_size, __race_cell) are rejected.
	Source Mode = iota
	// Transformed checks a program produced by the KISS transformation:
	// intrinsics are allowed, async and atomic are rejected (the output
	// must be in the sequential fragment).
	Transformed
)

// Error is a single well-formedness violation.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty list of violations.
type ErrorList []*Error

func (l ErrorList) Error() string {
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// Check validates p under the given mode. It returns nil or an ErrorList.
func Check(p *ast.Program, mode Mode) error {
	c := &checker{prog: p, mode: mode}
	c.program()
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs
}

type checker struct {
	prog *ast.Program
	mode Mode
	errs ErrorList

	funcs   map[string]*ast.Func
	globals map[string]bool
	records map[string]*ast.Record
	fields  map[string]bool // union of all record field names

	// per-function state
	vars     map[string]bool
	inAtomic bool
}

func (c *checker) errorf(pos ast.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) program() {
	p := c.prog
	c.funcs = map[string]*ast.Func{}
	c.globals = map[string]bool{}
	c.records = map[string]*ast.Record{}
	c.fields = map[string]bool{}

	for _, r := range p.Records {
		if _, dup := c.records[r.Name]; dup {
			c.errorf(r.Pos, "duplicate record %q", r.Name)
		}
		c.records[r.Name] = r
		seen := map[string]bool{}
		for _, f := range r.Fields {
			if seen[f] {
				c.errorf(r.Pos, "duplicate field %q in record %q", f, r.Name)
			}
			seen[f] = true
			c.fields[f] = true
		}
	}
	for _, g := range p.Globals {
		if c.globals[g.Name] {
			c.errorf(g.Pos, "duplicate global %q", g.Name)
		}
		c.globals[g.Name] = true
	}
	for _, f := range p.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			c.errorf(f.Pos, "duplicate function %q", f.Name)
		}
		c.funcs[f.Name] = f
		if c.globals[f.Name] {
			c.errorf(f.Pos, "function %q collides with a global variable", f.Name)
		}
	}
	if main, ok := c.funcs["main"]; !ok {
		c.errorf(ast.Pos{}, "program has no main function")
	} else if len(main.Params) != 0 {
		c.errorf(main.Pos, "main must take no parameters")
	}
	if p.RaceTarget != nil {
		t := p.RaceTarget
		if t.Global != "" {
			if !c.globals[t.Global] {
				c.errorf(ast.Pos{}, "race target global %q is not declared", t.Global)
			}
		} else if r, ok := c.records[t.Record]; !ok {
			c.errorf(ast.Pos{}, "race target record %q is not declared", t.Record)
		} else if r.FieldIndex(t.Field) < 0 {
			c.errorf(ast.Pos{}, "race target field %q not in record %q", t.Field, t.Record)
		}
	}

	for _, f := range p.Funcs {
		c.function(f)
	}
}

func (c *checker) function(f *ast.Func) {
	c.vars = map[string]bool{}
	seen := map[string]bool{}
	for _, param := range f.Params {
		if seen[param] {
			c.errorf(f.Pos, "function %q: duplicate parameter %q", f.Name, param)
		}
		seen[param] = true
		c.vars[param] = true
	}
	for _, l := range f.Locals {
		if seen[l.Name] {
			c.errorf(l.Pos, "function %q: duplicate local %q", f.Name, l.Name)
		}
		seen[l.Name] = true
		c.vars[l.Name] = true
	}
	c.inAtomic = false
	c.block(f.Body)
}

func (c *checker) block(b *ast.Block) {
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.block(s)

	case *ast.AssignStmt:
		switch l := s.Lhs.(type) {
		case *ast.VarExpr:
			c.varRef(l.Name, l.Pos)
		case *ast.DerefExpr:
			c.expr(l.X)
		case *ast.FieldExpr:
			c.expr(l.X)
			c.fieldRef(l.Field, l.Pos)
		default:
			c.errorf(s.Pos, "invalid assignment target")
		}
		c.expr(s.Rhs)

	case *ast.AssertStmt:
		c.condExpr(s.Cond, "assert")

	case *ast.AssumeStmt:
		c.condExpr(s.Cond, "assume")

	case *ast.AtomicStmt:
		if c.mode == Transformed {
			c.errorf(s.Pos, "atomic statement in transformed (sequential) program")
		}
		if c.inAtomic {
			c.errorf(s.Pos, "nested atomic statement (Section 3 restriction)")
		}
		c.inAtomic = true
		c.block(s.Body)
		c.inAtomic = false

	case *ast.BenignStmt:
		if c.mode == Transformed {
			c.errorf(s.Pos, "benign annotation in transformed program")
		}
		c.block(s.Body)

	case *ast.CallStmt:
		if c.inAtomic {
			c.errorf(s.Pos, "function call inside atomic statement (Section 3 restriction)")
		}
		if s.Result != "" {
			c.varRef(s.Result, s.Pos)
		}
		c.callTarget(s.Fn, s.Args, s.Pos, "call")

	case *ast.AsyncStmt:
		if c.mode == Transformed {
			c.errorf(s.Pos, "async call in transformed (sequential) program")
		}
		if c.inAtomic {
			c.errorf(s.Pos, "async call inside atomic statement (Section 3 restriction)")
		}
		c.callTarget(s.Fn, s.Args, s.Pos, "async call")

	case *ast.ReturnStmt:
		if c.inAtomic {
			c.errorf(s.Pos, "return inside atomic statement (Section 3 restriction)")
		}
		if s.Value != nil {
			c.expr(s.Value)
		}

	case *ast.IfStmt:
		c.condExpr(s.Cond, "if")
		c.block(s.Then)
		if s.Else != nil {
			c.block(s.Else)
		}

	case *ast.WhileStmt:
		c.condExpr(s.Cond, "while")
		c.block(s.Body)

	case *ast.ChoiceStmt:
		if len(s.Branches) == 0 {
			c.errorf(s.Pos, "choice statement with no branches")
		}
		for _, b := range s.Branches {
			c.block(b)
		}

	case *ast.IterStmt:
		c.block(s.Body)

	case *ast.SkipStmt:

	case *ast.TsPutStmt:
		if c.mode == Source {
			c.errorf(s.Pos, "__ts_put intrinsic in source program")
		}
		c.callTarget(s.Fn, s.Args, s.Pos, "__ts_put")

	case *ast.TsDispatchStmt:
		if c.mode == Source {
			c.errorf(s.Pos, "__ts_dispatch intrinsic in source program")
		}

	default:
		c.errorf(s.StmtPos(), "unknown statement type %T", s)
	}
}

func (c *checker) callTarget(fn ast.Expr, args []ast.Expr, pos ast.Pos, what string) {
	switch fn := fn.(type) {
	case *ast.FuncLit:
		callee, ok := c.funcs[fn.Name]
		if !ok {
			c.errorf(fn.Pos, "%s of undefined function %q", what, fn.Name)
		} else if len(args) != len(callee.Params) {
			c.errorf(pos, "%s of %q with %d arguments, want %d", what, fn.Name, len(args), len(callee.Params))
		}
	case *ast.VarExpr:
		c.varRef(fn.Name, fn.Pos)
	default:
		c.errorf(pos, "%s target must be a function name or variable", what)
	}
	for _, a := range args {
		c.expr(a)
	}
}

// condExpr checks a condition and rejects calls inside assume conditions
// (they could not be re-evaluated while blocked).
func (c *checker) condExpr(e ast.Expr, ctx string) {
	if ctx == "assume" {
		hasCall := false
		stub := &ast.AssertStmt{Cond: e}
		ast.WalkExprs(stub, func(x ast.Expr) {
			if _, ok := x.(*ast.CallExpr); ok {
				hasCall = true
			}
		})
		if hasCall {
			c.errorf(e.ExprPos(), "call inside assume condition (cannot be re-evaluated while blocked)")
		}
	}
	c.expr(e)
}

func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.IntLit, *ast.BoolLit, *ast.NullLit:
	case *ast.FuncLit:
		if _, ok := c.funcs[e.Name]; !ok {
			c.errorf(e.Pos, "reference to undefined function %q", e.Name)
		}
	case *ast.VarExpr:
		c.varRef(e.Name, e.Pos)
	case *ast.AddrOfExpr:
		c.varRef(e.Name, e.Pos)
	case *ast.DerefExpr:
		c.expr(e.X)
	case *ast.FieldExpr:
		c.expr(e.X)
		c.fieldRef(e.Field, e.Pos)
	case *ast.AddrFieldExpr:
		c.expr(e.X)
		c.fieldRef(e.Field, e.Pos)
	case *ast.UnaryExpr:
		if e.Op != "!" && e.Op != "-" {
			c.errorf(e.Pos, "unknown unary operator %q", e.Op)
		}
		c.expr(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case "+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "&&", "||":
		default:
			c.errorf(e.Pos, "unknown binary operator %q", e.Op)
		}
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.NewExpr:
		if _, ok := c.records[e.Record]; !ok {
			c.errorf(e.Pos, "new of undefined record %q", e.Record)
		}
	case *ast.CallExpr:
		if c.inAtomic {
			c.errorf(e.Pos, "function call inside atomic statement (Section 3 restriction)")
		}
		c.callTarget(e.Fn, e.Args, e.Pos, "call")
	case *ast.TsSizeExpr:
		if c.mode == Source {
			c.errorf(e.Pos, "__ts_size intrinsic in source program")
		}
	case *ast.RaceCellExpr:
		if c.mode == Source {
			c.errorf(e.Pos, "__race_cell intrinsic in source program")
		}
		if c.prog.RaceTarget == nil {
			c.errorf(e.Pos, "__race_cell used but program has no race target")
		}
		c.expr(e.X)
	default:
		c.errorf(e.ExprPos(), "unknown expression type %T", e)
	}
}

func (c *checker) varRef(name string, pos ast.Pos) {
	if !c.vars[name] && !c.globals[name] {
		c.errorf(pos, "reference to undeclared variable %q", name)
	}
}

func (c *checker) fieldRef(name string, pos ast.Pos) {
	if !c.fields[name] {
		c.errorf(pos, "reference to unknown field %q", name)
	}
}
