package seqcheck

import (
	"testing"

	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
)

func compile(t *testing.T, src string, maxTS int) *sem.Compiled {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p.MaxTS = maxTS
	lower.Program(p)
	c, err := sem.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestSafeProgram(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 1;
  choice { { x = x + 1; } [] { x = x + 2; } }
  assert(x > 1);
}
`, 0)
	r := Check(c, Options{})
	if r.Verdict != Safe {
		t.Fatalf("want safe, got %v", r)
	}
	if r.States < 4 {
		t.Errorf("implausibly few states: %d", r.States)
	}
}

func TestAssertionViolationWithTrace(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  choice { { x = 1; } [] { x = 2; } }
  assert(x != 2);
}
`, 0)
	r := Check(c, Options{})
	if r.Verdict != Error {
		t.Fatalf("want error, got %v", r)
	}
	if r.Failure == nil || r.Failure.Kind != sem.AssertFail {
		t.Fatalf("failure: %v", r.Failure)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no counterexample trace")
	}
	// The trace must end at the failing assert.
	last := r.Trace[len(r.Trace)-1]
	if last.Pos != r.Failure.Pos {
		t.Errorf("trace ends at %v, failure at %v", last.Pos, r.Failure.Pos)
	}
}

func TestBlockedAssumePrunesPath(t *testing.T) {
	c := compile(t, `
func main() {
  assume(false);
  assert(false);
}
`, 0)
	r := Check(c, Options{})
	if r.Verdict != Safe {
		t.Fatalf("assume(false) must prune the failing path, got %v", r)
	}
}

func TestStateDeduplication(t *testing.T) {
	// Without fingerprint dedup this loop would explore forever; with it,
	// the state space is 3 values of x times a few PCs.
	c := compile(t, `
var x;
func main() {
  x = 0;
  iter {
    choice { { x = 0; } [] { x = 1; } [] { x = 2; } }
  }
}
`, 0)
	r := Check(c, Options{MaxSteps: 100000})
	if r.Verdict != Safe {
		t.Fatalf("want safe, got %v", r)
	}
	if r.States > 100 {
		t.Errorf("dedup ineffective: %d states", r.States)
	}
}

func TestMaxStatesBudget(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  iter { assume(x < 100000); x = x + 1; }
}
`, 0)
	r := Check(c, Options{MaxStates: 500})
	if r.Verdict != ResourceBound {
		t.Fatalf("want resource-bound, got %v", r)
	}
	if r.States < 500 {
		t.Errorf("stopped at %d states, budget 500", r.States)
	}
}

func TestMaxStepsBudget(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  iter { assume(x < 100000); x = x + 1; }
}
`, 0)
	r := Check(c, Options{MaxSteps: 200})
	if r.Verdict != ResourceBound {
		t.Fatalf("want resource-bound, got %v", r)
	}
}

func TestMaxDepthPrunes(t *testing.T) {
	// The bug sits 50 steps deep; a shallow depth bound misses it (and
	// reports Safe, since depth pruning is a coverage cut, not a budget).
	c := compile(t, `
var x;
func main() {
  x = 0;
  iter { assume(x < 50); x = x + 1; }
  assert(x < 50);
}
`, 0)
	deep := Check(c, Options{})
	if deep.Verdict != Error {
		t.Fatalf("unbounded: want error, got %v", deep)
	}
	shallow := Check(c, Options{MaxDepth: 10})
	if shallow.Verdict != Safe {
		t.Fatalf("depth-bounded: want safe (bug beyond horizon), got %v", shallow)
	}
}

func TestRuntimeErrorReported(t *testing.T) {
	c := compile(t, `
var p;
func main() {
  var x;
  p = null;
  x = *p;
}
`, 0)
	r := Check(c, Options{})
	if r.Verdict != Error || r.Failure.Kind != sem.RuntimeFail {
		t.Fatalf("want runtime error, got %v", r)
	}
}

func TestTsDrainSemantics(t *testing.T) {
	// Dispatching from ts is part of the sequential semantics: the bug is
	// reachable only by running the pending function.
	c := compile(t, `
var x;
func f() { x = 1; }
func main() {
  x = 0;
  __ts_put(@f);
  __ts_dispatch();
  assert(x == 0);
}
`, 1)
	r := Check(c, Options{})
	if r.Verdict != Error {
		t.Fatalf("want error via dispatched pending call, got %v", r)
	}
}

func TestDeterministicResults(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  choice { { x = 1; } [] { x = 2; } [] { x = 3; } }
  iter { assume(x < 6); x = x + 1; }
}
`, 0)
	r1 := Check(c, Options{})
	r2 := Check(c, Options{})
	if r1.Verdict != r2.Verdict || r1.States != r2.States || r1.Steps != r2.Steps {
		t.Errorf("nondeterministic checker: %v vs %v", r1, r2)
	}
}

func TestBFSFindsShortestCounterexample(t *testing.T) {
	// Two paths to failure: a long loop-unwinding one and a direct one.
	// BFS must return the direct (shortest) trace.
	c := compile(t, `
var x;
func main() {
  x = 0;
  choice {
    {
      iter { assume(x < 20); x = x + 1; }
      assume(x == 20);
      assert(false);
    }
  []
    {
      assert(false);
    }
  }
}
`, 0)
	bfs := Check(c, Options{BFS: true})
	if bfs.Verdict != Error {
		t.Fatalf("BFS: want error, got %v", bfs)
	}
	dfs := Check(c, Options{})
	if dfs.Verdict != Error {
		t.Fatalf("DFS: want error, got %v", dfs)
	}
	if len(bfs.Trace) > len(dfs.Trace) {
		t.Errorf("BFS trace (%d events) longer than DFS trace (%d events)", len(bfs.Trace), len(dfs.Trace))
	}
	// The shortest failing path takes the second branch immediately:
	// x=0, nondet, assert — at most a handful of events.
	if len(bfs.Trace) > 6 {
		t.Errorf("BFS trace has %d events, expected a short direct path:\n%v", len(bfs.Trace), bfs.Trace)
	}
}

func TestBFSAndDFSAgreeOnVerdicts(t *testing.T) {
	srcs := []string{
		`var x; func main() { x = 1; assert(x == 1); }`,
		`var x; func main() { choice { { x = 1; } [] { x = 2; } } assert(x == 1); }`,
		`var x; func main() { x = 0; iter { assume(x < 5); x = x + 1; } assert(x <= 5); }`,
	}
	for i, src := range srcs {
		c := compile(t, src, 0)
		d := Check(c, Options{})
		b := Check(c, Options{BFS: true})
		if d.Verdict != b.Verdict {
			t.Errorf("program %d: DFS %v, BFS %v", i, d.Verdict, b.Verdict)
		}
		if d.States != b.States && d.Verdict == Safe {
			t.Errorf("program %d: safe verdicts must explore equal state counts (DFS %d, BFS %d)",
				i, d.States, b.States)
		}
	}
}
