package seqcheck

import (
	"sync"
	"sync/atomic"

	"repro/internal/sem"
	"repro/internal/stats"
)

// The parallel search is a level-synchronized BFS split into two
// alternating phases per level:
//
//   - an expansion round, where the worker pool claims items (states) off
//     the level by atomic index, runs sem.Step, fingerprints each
//     successor, and drops successors already in the sharded visited set
//     (a read-only prefilter — the set is frozen during the round, so
//     the answer is deterministic);
//   - a single-threaded commit loop, which replays the level in item
//     order through exactly the budget checks of the sequential BFS
//     search: steps budget before each expansion, first failure wins at
//     the lowest item index, within-level duplicates resolved in item
//     order via Set.Seen, states budget per fresh state.
//
// Because the commit loop alone mutates the visited set and all search
// counters, every Result field that is deterministic for the sequential
// BFS search is bit-identical here at every worker count; the workers
// only decide wall-clock and the diagnostics in Result.Parallel. The
// price is that a level whose commit trips a budget has expanded its
// remaining items for nothing — bounded waste, one level's worth.

// minParallelLevel is the level size below which the coordinator expands
// inline rather than paying worker fan-out for a handful of states.
const minParallelLevel = 4

// workerPollStride is how many items a worker claims between context
// polls (ctx.Err takes a mutex; items are whole Step calls, so this is a
// much coarser unit than the sequential loop's ctxPollStride).
const workerPollStride = 64

// expansion is one prefiltered successor produced by a worker: the
// outcome plus its fingerprint, hashed worker-side so the commit loop
// never hashes. idx is the successor's raw index in the unpruned outcome
// list — the macro engine's within-level ordering key (the per-statement
// engine records it too, for uniformity; it is simply the loop index).
type expansion struct {
	out sem.Outcome
	fp  uint64
	idx int32
}

// Expansion rounds allocate a successor buffer per item and a slot slice
// per level, all dead by the next level. The pools recycle them across
// levels and across checks; buffers are cleared before Put so pooled
// memory never pins dead states. Early returns (budget trips, failures)
// may skip a Put — a pool miss later, never a leak or a correctness
// issue. (Frontier frames themselves live in the frontier.Queue now,
// which owns and reuses their slices.)
var (
	expPool  = sync.Pool{New: func() any { return new([]expansion) }}
	slotPool = sync.Pool{New: func() any { return new([]itemSlot) }}
)

func expGet() []expansion {
	return (*expPool.Get().(*[]expansion))[:0]
}

func expPut(exps []expansion) {
	clear(exps)
	exps = exps[:0]
	expPool.Put(&exps)
}

func slotsGet(n int) []itemSlot {
	slots := (*slotPool.Get().(*[]itemSlot))[:0]
	if cap(slots) < n {
		return make([]itemSlot, n)
	}
	slots = slots[:n]
	clear(slots)
	return slots
}

func slotsPut(slots []itemSlot) {
	clear(slots)
	slots = slots[:0]
	slotPool.Put(&slots)
}

// itemSlot is the private output slot for one level item. Slots make the
// round's output independent of worker scheduling: item i's results land
// in slot i no matter which worker claimed it.
type itemSlot struct {
	fail   *sem.Failure
	exps   []expansion
	worker int
}

// pframe is a frontier entry: a state plus its position in the trace tree.
type pframe struct {
	st *sem.State
	nd *node
}

func checkParallel(c *sem.Compiled, opts Options) *Result {
	workers := opts.SearchWorkers
	res := &Result{}
	init := sem.NewState(c)

	vis := newVisited(opts)
	vis.Seen(sem.NewFPHasher().Hash(init))
	res.States = 1
	res.PeakFrontier = 1
	perWorker := make([]int, workers)
	// The level queue is a FIFO frontier bucket per depth: arrival order
	// is commit order, spilled or resident, and a fully resident level
	// streams back as one chunk — the classic whole-level pass.
	q := newSeqQueue(c, opts, false)
	defer q.Close()
	defer func() {
		res.Visited = vis.Len()
		res.Parallel = &stats.Parallel{
			Workers:         workers,
			Shards:          vis.Shards(),
			PerWorkerStates: perWorker,
			ShardContention: vis.Contention(),
		}
		res.Memory = memoryRecord(opts, vis, q.Stats())
	}()

	hashers := make([]*sem.FPHasher, workers)
	for i := range hashers {
		hashers[i] = sem.NewFPHasher()
	}

	q.Push(0, pframe{st: init, nd: &node{}})
	for depth := 0; q.Len() > 0; depth++ {
		res.PeakDepth = depth
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				res.Verdict = ResourceBound
				res.Reason = reasonFor(err)
				return res
			}
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			break // no state at or below this level may be expanded
		}

		bkt := q.Drain(depth)
		total := bkt.Len()
		pushed := 0 // successors committed to depth+1 so far
		base := 0   // items of this level committed in earlier chunks
		for {
			level, _ := bkt.Next(frontierChunk)
			if len(level) == 0 {
				break
			}

			// Expansion round.
			slots := slotsGet(len(level))
			expandItem := func(i, w int) {
				it := level[i]
				if it.st.Threads[0].Done() {
					return
				}
				sr := sem.Step(it.st, 0)
				if sr.Failure != nil {
					slots[i] = itemSlot{fail: sr.Failure, worker: w}
					return
				}
				exps := expGet()
				for k, out := range sr.Outcomes {
					fp := hashers[w].Hash(out.State)
					if vis.Contains(fp) {
						continue
					}
					exps = append(exps, expansion{out: out, fp: fp, idx: int32(k)})
				}
				slots[i] = itemSlot{exps: exps, worker: w}
			}
			if workers == 1 || len(level) < minParallelLevel {
				for i := range level {
					expandItem(i, 0)
					if opts.Context != nil && i%workerPollStride == workerPollStride-1 {
						if err := opts.Context.Err(); err != nil {
							res.Verdict = ResourceBound
							res.Reason = reasonFor(err)
							return res
						}
					}
				}
			} else {
				var claim atomic.Int64
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						polled := 0
						for {
							i := int(claim.Add(1)) - 1
							if i >= len(level) || stop.Load() {
								return
							}
							expandItem(i, w)
							if polled++; polled >= workerPollStride {
								polled = 0
								if opts.Context != nil && opts.Context.Err() != nil {
									stop.Store(true)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if stop.Load() {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(opts.Context.Err())
					return res
				}
			}

			// Commit: replay the chunk in arrival order through the
			// sequential search's budget checks.
			for i := range level {
				it := level[i]
				if it.st.Threads[0].Done() {
					continue
				}
				if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
					res.Verdict = ResourceBound
					res.Reason = stats.ReasonSteps
					return res
				}
				res.Steps++
				sl := &slots[i]
				if sl.fail != nil {
					res.Verdict = Error
					res.Failure = sl.fail
					failEv := sem.Event{
						Kind:     sem.EvStmt,
						ThreadID: sl.fail.ThreadID,
						Fn:       sl.fail.Fn,
						Pos:      sl.fail.Pos,
						Text:     sl.fail.Msg,
					}
					res.Trace = append(fullTrace(c, it.nd), failEv)
					return res
				}
				for _, ex := range sl.exps {
					if vis.Seen(ex.fp) {
						continue // claimed by an earlier item this level
					}
					perWorker[sl.worker]++
					res.States++
					if opts.MaxStates > 0 && res.States > opts.MaxStates {
						res.Verdict = ResourceBound
						res.Reason = stats.ReasonStates
						return res
					}
					q.Push(depth+1, pframe{
						st: ex.out.State,
						nd: &node{parent: it.nd, event: ex.out.Event, idx: ex.idx, depth: depth + 1},
					})
					pushed++
					if fl := (total - 1 - (base + i)) + pushed; fl > res.PeakFrontier {
						res.PeakFrontier = fl
					}
				}
				if sl.exps != nil {
					expPut(sl.exps)
					sl.exps = nil
				}
			}
			slotsPut(slots)
			base += len(level)
		}
		bkt.Close()
		opts.Collector.Sample(res.States, res.Steps, pushed, depth, vis.Len())
	}
	res.Verdict = Safe
	return res
}
