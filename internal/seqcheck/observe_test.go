package seqcheck

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// loopSrc explores a large-but-bounded state space: two nondet counters
// give ~10^4+ states, enough for budgets and cancellation to bite.
const loopSrc = `
var a;
var b;
func main() {
  a = 0; b = 0;
  iter { choice { { a = a + 1; assume(a < 200); } [] { b = b + 1; assume(b < 200); } } }
  assert(a >= 0);
}
`

// TestCanceledContextReturnsPartialResult: an already-canceled context
// stops the search immediately with ReasonCanceled and partial (near-zero)
// stats — not an error, not a hang.
func TestCanceledContextReturnsPartialResult(t *testing.T) {
	c := compile(t, loopSrc, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Check(c, Options{Context: ctx})
	if r.Verdict != ResourceBound {
		t.Fatalf("want resource-bound, got %v", r)
	}
	if r.Reason != stats.ReasonCanceled {
		t.Fatalf("want ReasonCanceled, got %v", r.Reason)
	}
	if r.States > ctxPollStride+1 {
		t.Errorf("canceled run explored %d states (want prompt stop)", r.States)
	}
	if !strings.Contains(r.String(), "canceled") {
		t.Errorf("String() does not name the tripped bound: %q", r.String())
	}
}

// TestDeadlineReason: an expired deadline reports ReasonDeadline, not
// ReasonCanceled.
func TestDeadlineReason(t *testing.T) {
	c := compile(t, loopSrc, 0)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	r := Check(c, Options{Context: ctx})
	if r.Verdict != ResourceBound || r.Reason != stats.ReasonDeadline {
		t.Fatalf("want resource-bound/deadline, got %v reason=%v", r.Verdict, r.Reason)
	}
	if !strings.Contains(r.String(), "deadline") {
		t.Errorf("String() does not name the deadline: %q", r.String())
	}
}

// TestBudgetReasons: state and step budgets name themselves in the result.
func TestBudgetReasons(t *testing.T) {
	c := compile(t, loopSrc, 0)
	r := Check(c, Options{MaxStates: 100})
	if r.Verdict != ResourceBound || r.Reason != stats.ReasonStates {
		t.Fatalf("MaxStates trip: verdict=%v reason=%v", r.Verdict, r.Reason)
	}
	if !strings.Contains(r.String(), "max-states") {
		t.Errorf("String() does not name the state budget: %q", r.String())
	}
	r = Check(c, Options{MaxSteps: 100})
	if r.Verdict != ResourceBound || r.Reason != stats.ReasonSteps {
		t.Fatalf("MaxSteps trip: verdict=%v reason=%v", r.Verdict, r.Reason)
	}
	if !strings.Contains(r.String(), "max-steps") {
		t.Errorf("String() does not name the step budget: %q", r.String())
	}
}

// TestSearchMetrics: a completed search reports a consistent visited-set
// size and nonzero peaks, in both DFS and BFS orders.
func TestSearchMetrics(t *testing.T) {
	for _, bfs := range []bool{false, true} {
		c := compile(t, loopSrc, 0)
		r := Check(c, Options{MaxStates: 5000, BFS: bfs})
		if r.Visited == 0 || r.Visited != r.States {
			t.Errorf("bfs=%v: visited=%d states=%d (want equal, nonzero)", bfs, r.Visited, r.States)
		}
		if r.PeakFrontier <= 0 {
			t.Errorf("bfs=%v: peak frontier %d", bfs, r.PeakFrontier)
		}
		if r.PeakDepth <= 0 {
			t.Errorf("bfs=%v: peak depth %d", bfs, r.PeakDepth)
		}
	}
}

// TestCollectorSamples: a collector with a tight state cadence sees
// monotone progress events from inside the search loop.
func TestCollectorSamples(t *testing.T) {
	c := compile(t, loopSrc, 0)
	var events []stats.Event
	col := stats.NewCollector(func(e stats.Event) { events = append(events, e) }, 500, time.Hour)
	col.Start(stats.PhaseCheck)
	r := Check(c, Options{MaxStates: 5000, Collector: col})
	col.End(stats.PhaseCheck)
	if r.Verdict != ResourceBound {
		t.Fatalf("unexpected verdict %v", r.Verdict)
	}
	if len(events) < 5 {
		t.Fatalf("only %d progress events for a 5000-state search at cadence 500", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].States < events[i-1].States {
			t.Errorf("states regressed between events: %d -> %d", events[i-1].States, events[i].States)
		}
	}
	last := events[len(events)-1]
	if last.Visited == 0 {
		t.Error("events carry no visited-set size")
	}
}

// TestCancellationIsDeterministic: canceling mid-run must not perturb a
// later complete run (shared structures are per-call).
func TestCancellationIsDeterministic(t *testing.T) {
	c := compile(t, loopSrc, 0)
	full1 := Check(c, Options{MaxStates: 3000})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = Check(c, Options{Context: ctx})
	full2 := Check(c, Options{MaxStates: 3000})
	if full1.States != full2.States || full1.Steps != full2.Steps ||
		full1.PeakFrontier != full2.PeakFrontier || full1.PeakDepth != full2.PeakDepth {
		t.Errorf("rerun after cancellation differs: %+v vs %+v", full1, full2)
	}
}
