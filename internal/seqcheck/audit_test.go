package seqcheck

import (
	"testing"

	"repro/internal/randprog"
)

// TestAuditFingerprints: on small programs the audit mode must find zero
// 64-bit collisions and must not perturb the search itself — verdicts and
// state counts equal the plain run, in both DFS and BFS order.
func TestAuditFingerprints(t *testing.T) {
	srcs := []string{
		`var x; func main() { x = 1; assert(x == 1); }`,
		`var x; func main() { choice { { x = 1; } [] { x = 2; } } assert(x == 1); }`,
		`var x; func main() { x = 0; iter { assume(x < 8); x = x + 1; } assert(x <= 8); }`,
	}
	for i := int64(0); i < 20; i++ {
		srcs = append(srcs, randprog.Generate(i, randprog.Default))
	}
	for i, src := range srcs {
		c := compile(t, src, 0)
		for _, bfs := range []bool{false, true} {
			// Audit mode forces macro-step compression off (its maps shadow
			// per-statement visited inserts), so compare against the
			// per-statement search.
			plain := Check(c, Options{BFS: bfs, MaxStates: 20000, DisableMacroSteps: true})
			audit := Check(c, Options{BFS: bfs, MaxStates: 20000, AuditFingerprints: true})
			if audit.HashCollisions != 0 {
				t.Errorf("program %d (bfs=%v): %d hash collisions", i, bfs, audit.HashCollisions)
			}
			if plain.Verdict != audit.Verdict || plain.States != audit.States || plain.Steps != audit.Steps {
				t.Errorf("program %d (bfs=%v): audit changed the search: %v/%d/%d vs %v/%d/%d",
					i, bfs, plain.Verdict, plain.States, plain.Steps,
					audit.Verdict, audit.States, audit.Steps)
			}
		}
	}
}

// TestBFSQueueReleasesFrames is a structural regression test for the BFS
// dequeue: a breadth-first run over a wide state space must visit every
// state exactly once (head-index dequeue, compaction and all).
func TestBFSQueueReleasesFrames(t *testing.T) {
	// A 3-deep tree of binary choices over three variables: 27 leaf
	// valuations, fully enumerable.
	c := compile(t, `
var a; var b; var d;
func main() {
  choice { { a = 0; } [] { a = 1; } [] { a = 2; } }
  choice { { b = 0; } [] { b = 1; } [] { b = 2; } }
  choice { { d = 0; } [] { d = 1; } [] { d = 2; } }
  assert(a + b + d <= 6);
}
`, 0)
	d := Check(c, Options{})
	bfs := Check(c, Options{BFS: true})
	if d.Verdict != Safe || bfs.Verdict != Safe {
		t.Fatalf("want safe/safe, got %v/%v", d.Verdict, bfs.Verdict)
	}
	if d.States != bfs.States {
		t.Errorf("DFS explored %d states, BFS %d — dequeue is dropping or duplicating frames",
			d.States, bfs.States)
	}
}
