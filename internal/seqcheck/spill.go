package seqcheck

import (
	"encoding/binary"
	"fmt"

	"repro/internal/frontier"
	"repro/internal/sem"
	"repro/internal/stats"
	"repro/internal/visited"
)

// Memory-bounded search support for the BFS engines: the spilling
// frontier's codec (order key = the padded successor-index path, payload
// = a sem state snapshot), the visited-store selection, and trace
// reconstruction for frames restored from disk.
//
// A spilled frame drops its trace-tree node chain — serializing parent
// pointers would drag the whole ancestor tree to disk — and keeps only
// its padded path. The restored frame's node carries that path in `base`;
// paddedPath counts it toward descendants' order keys, which is what
// keeps the bucket order (and therefore every counter and the first
// reported failure) bit-identical to the unspilled search. The event
// trace of a failure below a restored node is rebuilt by replaying the
// base path from the initial state: each entry is the raw successor index
// the per-statement search took at that micro step, so the replayed
// events are exactly the ones the in-RAM node chain would have held.

// frontierChunk is how many frames a spilled bucket is streamed in at a
// time. Fully resident buckets always arrive as one chunk, so with
// spilling disabled the chunk loop degenerates to the classic
// whole-bucket pass.
const frontierChunk = 4096

// pframeNodeBytes is the budget estimate for a frame's node and queue
// slot on top of its state.
const pframeNodeBytes = 96

// appendPathIdx appends one raw successor index to an encoded path key.
// Indices are non-negative, so 4-byte big-endian encoding makes
// bytes.Compare on keys agree with pathLess on index slices (including
// the shorter-prefix-first tie break).
func appendPathIdx(buf []byte, idx int32) []byte {
	return binary.BigEndian.AppendUint32(buf, uint32(idx))
}

// appendNodePath appends nd's full padded path (root-first) in key
// encoding.
func appendNodePath(buf []byte, nd *node) []byte {
	if nd == nil {
		return buf
	}
	if nd.parent != nil {
		buf = appendNodePath(buf, nd.parent)
		for _, idx := range nd.prefixIdx {
			buf = appendPathIdx(buf, idx)
		}
		return appendPathIdx(buf, nd.idx)
	}
	// A restored root carries its ancestry as an already-encoded base.
	for _, idx := range nd.base {
		buf = appendPathIdx(buf, idx)
	}
	return buf
}

// decodePathKey decodes a key back into raw successor indices.
func decodePathKey(key []byte) []int32 {
	out := make([]int32, len(key)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(key[i*4:]))
	}
	return out
}

// newSeqQueue builds the frontier queue for a seqcheck BFS engine;
// ordered selects path-key order (the macro bucket engine) over arrival
// order (the per-statement level engine).
func newSeqQueue(c *sem.Compiled, opts Options, ordered bool) *frontier.Queue[pframe] {
	return frontier.New(frontier.Config{
		BudgetBytes: opts.FrontierBudget,
		Dir:         opts.SpillDir,
		Ordered:     ordered,
	}, frontier.Codec[pframe]{
		Key: func(f pframe, buf []byte) []byte {
			return appendNodePath(buf, f.nd)
		},
		Encode: func(f pframe, buf []byte) []byte {
			return sem.AppendSnapshot(buf, f.st)
		},
		Decode: func(key, payload []byte, depth int) pframe {
			st, err := sem.DecodeSnapshot(c, payload)
			if err != nil {
				panic(fmt.Sprintf("seqcheck: corrupt spilled frame: %v", err))
			}
			return pframe{st: st, nd: &node{base: decodePathKey(key), depth: depth}}
		},
		Size: func(f pframe) int {
			return f.st.MemSize() + pframeNodeBytes
		},
	})
}

// replayPath re-executes the raw successor indices of a padded path from
// the initial state, returning the event sequence it spells. Used only
// to rebuild the trace prefix of a failure under a restored frame —
// O(depth) once per reported failure.
func replayPath(c *sem.Compiled, path []int32) []sem.Event {
	st := sem.NewState(c)
	evs := make([]sem.Event, 0, len(path))
	for _, idx := range path {
		sr := sem.Step(st, 0)
		if sr.Failure != nil || int(idx) >= len(sr.Outcomes) {
			panic(fmt.Sprintf("seqcheck: spilled path does not replay (idx %d of %d outcomes)",
				idx, len(sr.Outcomes)))
		}
		out := sr.Outcomes[idx]
		evs = append(evs, out.Event)
		st = out.State
	}
	return evs
}

// fullTrace is node.trace extended to chains rooted in a restored frame:
// the base path's events are replayed and prepended.
func fullTrace(c *sem.Compiled, nd *node) []sem.Event {
	root := nd
	for root != nil && root.parent != nil {
		root = root.parent
	}
	if root == nil || len(root.base) == 0 {
		return nd.trace()
	}
	pre := replayPath(c, root.base)
	return append(pre, nd.trace()...)
}

// newVisited selects the visited store for this search's options.
func newVisited(opts Options) visited.Store {
	if !opts.VisitedCompact {
		return visited.New(opts.NumShards)
	}
	if opts.AuditVisited {
		return visited.NewAudited(opts.VisitedBytes)
	}
	return visited.NewCompact(opts.VisitedBytes)
}

// memoryRecord assembles the Result.Memory diagnostics; nil when neither
// memory-bounding feature engaged.
func memoryRecord(opts Options, vis visited.Store, fst frontier.Stats) *stats.Memory {
	if !opts.VisitedCompact && opts.FrontierBudget <= 0 {
		return nil
	}
	m := &stats.Memory{VisitedMode: "exact"}
	var filter *visited.Compact
	switch v := vis.(type) {
	case *visited.Compact:
		filter = v
	case *visited.Audited:
		filter = v.Filter()
		m.VisitedFalsePositives = v.FalsePositives()
	}
	if filter != nil {
		m.VisitedMode = "compact"
		m.VisitedBytes = filter.SizeBytes()
		m.VisitedOccupancy = filter.Occupancy()
		m.VisitedFPRate = filter.EstFPRate()
	}
	if opts.FrontierBudget > 0 {
		m.SpillBudgetBytes = opts.FrontierBudget
		m.SpilledBytes = fst.SpilledBytes
		m.SpilledFrames = fst.SpilledFrames
		m.SpilledRuns = fst.Runs
		m.MergePasses = fst.MergePasses
		m.FrontierPeakRAM = fst.PeakRAMBytes
	}
	return m
}
