package seqcheck

import (
	"reflect"
	"testing"

	"repro/internal/randprog"
)

// TestMacroDifferential: the differential property behind macro-step
// compression — on fully explored random programs, compression on and
// off produce the same verdict, the same failure, and the same
// counterexample trace at SearchWorkers 0 (classic DFS vs macro DFS),
// 1, and 8 (parallel BFS vs macro bucket BFS). Only the stored-state
// counters may differ, and they must differ downward.
func TestMacroDifferential(t *testing.T) {
	var onStates, offStates, errors int
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, w := range []int{0, 1, 8} {
			off := Check(compile(t, src, 0), Options{SearchWorkers: w, MaxStates: 200000, DisableMacroSteps: true})
			on := Check(compile(t, src, 0), Options{SearchWorkers: w, MaxStates: 200000})
			if off.Verdict == ResourceBound || on.Verdict == ResourceBound {
				continue
			}
			if on.Verdict != off.Verdict {
				t.Errorf("seed %d workers %d: verdict on=%v off=%v\n%s", seed, w, on.Verdict, off.Verdict, src)
				continue
			}
			if !reflect.DeepEqual(on.Failure, off.Failure) {
				t.Errorf("seed %d workers %d: failure diverged:\n on  %v\n off %v", seed, w, on.Failure, off.Failure)
			}
			if !reflect.DeepEqual(on.Trace, off.Trace) {
				t.Errorf("seed %d workers %d: trace diverged (%d vs %d events):\n on  %v\n off %v",
					seed, w, len(on.Trace), len(off.Trace), on.Trace, off.Trace)
			}
			if on.States > off.States {
				t.Errorf("seed %d workers %d: compression stored more states (%d) than per-statement (%d)",
					seed, w, on.States, off.States)
			}
			if on.Verdict == Error {
				errors++
			}
			onStates += on.States
			offStates += off.States
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; trace agreement vacuous")
	}
	if onStates >= offStates {
		t.Errorf("compression never reduced stored states: on=%d off=%d", onStates, offStates)
	}
}

// TestMacroBudgetedVerdictsAgree: under tight budgets the two arms may
// trip at different points (a folded run re-executes deterministic
// segments the per-statement search deduplicates mid-chain), but
// whenever both complete, the verdicts and failures still agree.
func TestMacroBudgetedVerdictsAgree(t *testing.T) {
	budgets := []Options{
		{MaxSteps: 300},
		{MaxDepth: 10},
		{MaxStates: 150},
	}
	checked := 0
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for bi, b := range budgets {
			for _, w := range []int{0, 1} {
				offOpts, onOpts := b, b
				offOpts.SearchWorkers, onOpts.SearchWorkers = w, w
				offOpts.DisableMacroSteps = true
				off := Check(compile(t, src, 0), offOpts)
				on := Check(compile(t, src, 0), onOpts)
				if off.Verdict == ResourceBound || on.Verdict == ResourceBound {
					continue
				}
				checked++
				if on.Verdict != off.Verdict || !reflect.DeepEqual(on.Failure, off.Failure) {
					t.Errorf("seed %d budget %d workers %d: on=%v(%v) off=%v(%v)",
						seed, bi, w, on.Verdict, on.Failure, off.Verdict, off.Failure)
				}
			}
		}
	}
	if checked == 0 {
		t.Error("every budgeted run tripped; agreement vacuous")
	}
}

// TestMacroIdenticalAcrossWorkerCounts: the compressed parallel search
// keeps the PR 3 determinism contract — the whole Result is bit-identical
// at worker counts 1, 2, and 8.
func TestMacroIdenticalAcrossWorkerCounts(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		var base Result
		for _, w := range []int{1, 2, 8} {
			got := stripParallel(Check(compile(t, src, 0), Options{SearchWorkers: w}))
			if w == 1 {
				base = got
				continue
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("seed %d: workers=1 vs workers=%d:\n  %+v\n  %+v", seed, w, base, got)
			}
		}
	}
}
