// Package seqcheck is an explicit-state model checker for the *sequential*
// fragment of the parallel language — the role SLAM plays in the KISS
// architecture (Figure 1). It understands only sequential semantics: one
// thread, nondeterminism from choice/iter, and the ts intrinsics introduced
// by the KISS transformation. It never interleaves threads.
//
// The checker performs depth-first reachability over canonical state
// fingerprints with configurable state/step budgets (the paper runs SLAM
// under "a resource bound of 20 minutes of CPU time and 800MB of memory";
// our budgets play the same role in the Table 1 experiments). On error it
// returns the full counterexample trace, which package trace maps back to
// an interleaved execution of the original concurrent program.
package seqcheck

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sem"
	"repro/internal/stats"
)

// Verdict is the outcome of a check.
type Verdict int

const (
	// Safe: the reachable state space was exhausted without any failure.
	Safe Verdict = iota
	// Error: an assertion failure or runtime error is reachable.
	Error
	// ResourceBound: the state or step budget was exhausted first — the
	// analogue of the paper's per-field timeouts in Table 1.
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Options configure the search budgets. Zero values mean "unlimited".
type Options struct {
	MaxStates int // distinct states explored
	MaxSteps  int // total transitions executed
	MaxDepth  int // maximum trace length considered
	// BFS switches the search to breadth-first order, which makes the
	// returned counterexample a *shortest* error trace. DFS (the default)
	// is faster to a first error and uses less frontier memory.
	BFS bool
	// DisableMacroSteps turns off macro-step compression (sem.MacroStep),
	// restoring the per-statement search that stores and fingerprints a
	// state after every micro transition. Compression is on by default: the
	// search stores only decision-point states and folds each maximal
	// deterministic run into one transition, keeping the verdict, failure
	// position, and counterexample trace identical while cutting stored
	// states, clones, and visited-set pressure by the run length. States,
	// Steps and the peak metrics keep their meaning (Steps still counts
	// micro transitions); States counts only stored states — compare with
	// StatesStepped for the compression ratio. Budget trip points may
	// differ from the per-statement search (MaxStates bounds *stored*
	// states), exactly as BFS and DFS already cover different prefixes of
	// the state space under a budget. AuditFingerprints forces compression
	// off: the audit maps shadow the per-statement visited inserts.
	DisableMacroSteps bool
	// Memo, when non-nil, is the fold-memoization table shared by every
	// engine of this search (sem.MacroStepMemo): folds whose control point
	// and read footprint were seen before replay as stored write deltas
	// instead of re-executing. The verdict, trace, failure position, and
	// every deterministic counter are bit-identical with or without a
	// memo; only wall time and the memo's own hit/miss statistics differ.
	// Ignored when macro steps are disabled.
	Memo *sem.FoldMemo
	// Summaries, when non-nil, is the call-grained procedure-summary table
	// shared by every engine of this search (sem.MacroStepMemoSum): calls
	// whose site and read footprint were seen before replay as one stored
	// write delta instead of re-executing the callee. Same bit-identity
	// contract as Memo. Ignored when macro steps are disabled.
	Summaries *sem.SummaryTable
	// AuditFingerprints cross-checks the 64-bit visited-set hashes against
	// the canonical string encodings, counting states whose hash collided
	// with a structurally different state in Result.HashCollisions. A
	// collision makes the search treat a new state as visited — a missed
	// state, never a false alarm (the same unsoundness direction as the
	// KISS reduction). Audit mode restores the string encoder's cost and
	// is meant for tests on small programs.
	AuditFingerprints bool
	// SearchWorkers >= 1 explores the state space with a worker pool over
	// a level-synchronized breadth-first frontier and a sharded visited
	// set. The verdict, counterexample trace, and every deterministic
	// search metric (states, steps, visited, peaks) are bit-identical at
	// every worker count — workers only expand and hash; a single-threaded
	// commit loop replays each level in item order through the budget
	// checks — so counterexamples are shortest traces and first-error-wins
	// resolves to the lowest (depth, item index). 1 runs the same search
	// on the calling goroutine (the deterministic baseline). 0 (the
	// default) keeps the classic sequential search honoring BFS/DFS;
	// AuditFingerprints also forces the sequential search (the audit maps
	// are unsharded).
	SearchWorkers int
	// NumShards is the visited-set shard count for the parallel search
	// (rounded up to a power of two; 0 selects visited.DefaultShards).
	NumShards int
	// FrontierBudget, when > 0, bounds the BFS frontier's resident bytes:
	// past the budget the bucket queue serializes frames (state snapshot
	// plus padded successor-index path) to sorted on-disk runs under
	// SpillDir and streams them back in exact processing order. Spilling
	// is strictly an eviction policy — the verdict, trace, and every
	// deterministic counter are bit-identical to an unbounded run at
	// every worker count and budget. Ignored by the DFS engines (their
	// frontier is a stack of O(depth) states). <= 0 disables spilling.
	FrontierBudget int64
	// SpillDir is where frontier runs are created (empty selects the
	// system temp directory). A private subdirectory is created on first
	// spill and removed when the search finishes.
	SpillDir string
	// VisitedCompact replaces the exact visited set with a blocked Bloom
	// filter over the 64-bit fingerprints (~8–16 bits per state at the
	// budgets it is meant for). Its only error is a false "seen" — a
	// fresh state mistaken for visited and pruned, the same unsoundness
	// direction as fingerprint hashing and the KISS reduction itself
	// (missed states, never false alarms). Honored by the macro DFS and
	// all BFS engines; the classic per-statement sequential search (and
	// AuditFingerprints, whose audit maps shadow exact inserts) keeps
	// the exact set.
	VisitedCompact bool
	// VisitedBytes sizes the compact filter (<= 0 selects
	// visited.DefaultCompactBytes). Part of the result contract in
	// compact mode: the filter size determines which states false-
	// positive away.
	VisitedBytes int64
	// AuditVisited shadows the compact filter with an exact set and
	// counts real false positives in the Memory stats. The search still
	// explores the compact filter's state set — audit observes, never
	// corrects — but restores the exact set's memory cost; meant for
	// tests and calibration runs. Ignored unless VisitedCompact.
	AuditVisited bool
	// Context, when non-nil, is polled during the search (every
	// ctxPollStride transitions). Cancellation or deadline expiry stops
	// the search with a ResourceBound verdict and Reason
	// ReasonCanceled/ReasonDeadline — a consistent partial result, never
	// an error.
	Context context.Context
	// Collector, when non-nil, receives per-iteration progress samples
	// (states, steps, frontier length, depth, visited-set size). Phase
	// timing and finalization are the caller's concern; a nil collector
	// costs one branch per iteration.
	Collector *stats.Collector
}

// ctxPollStride is how many loop iterations pass between Context polls:
// ctx.Err takes a mutex, so the hot loop amortizes it. The first poll
// happens on the first iteration, making an already-canceled context
// return immediately even on tiny programs.
const ctxPollStride = 512

// Result reports the verdict along with the witness trace and search
// statistics.
type Result struct {
	Verdict Verdict
	Failure *sem.Failure
	// Trace is the event sequence from the initial state to the failing
	// statement (Error verdicts only).
	Trace  []sem.Event
	States int
	Steps  int
	// StatesStepped counts the states the search traversed, including the
	// intermediate states of folded deterministic runs that macro-step
	// compression never stored: States plus the folded run lengths.
	// StatesStepped/States is the compression ratio; without compression
	// the two are equal (the per-statement engines leave this at zero and
	// callers treat that as "equal to States").
	StatesStepped int
	// Reason names which bound ended the search (ResourceBound verdicts):
	// the state budget, the step budget, the context deadline, or
	// cancellation. ReasonNone for Safe/Error verdicts.
	Reason stats.Reason
	// Visited is the final visited-set size; PeakFrontier and PeakDepth
	// are the frontier-length and trace-depth high-water marks.
	Visited      int
	PeakFrontier int
	PeakDepth    int
	// HashCollisions counts states whose 64-bit fingerprint collided with
	// a structurally different visited state (AuditFingerprints only).
	HashCollisions int
	// Parallel carries the worker-pool diagnostics of a parallel search
	// (SearchWorkers > 1); nil for sequential runs.
	Parallel *stats.Parallel
	// Memory carries the memory-bounding diagnostics (compact-filter
	// occupancy, spilled bytes/runs/merges); nil when neither
	// FrontierBudget nor VisitedCompact engaged.
	Memory *stats.Memory
}

func (r *Result) String() string {
	counters := fmt.Sprintf("states=%d steps=%d visited=%d peak-frontier=%d",
		r.States, r.Steps, r.Visited, r.PeakFrontier)
	if r.StatesStepped > 0 {
		counters += fmt.Sprintf(" stepped=%d", r.StatesStepped)
	}
	switch r.Verdict {
	case Error:
		return fmt.Sprintf("error: %s (%s)", r.Failure, counters)
	case Safe:
		return fmt.Sprintf("safe (%s)", counters)
	default:
		return fmt.Sprintf("resource bound exhausted (%s; %s)",
			stats.BoundName(r.Reason), counters)
	}
}

// reasonFor maps a context error to the bound reason it represents.
func reasonFor(err error) stats.Reason {
	if errors.Is(err, context.DeadlineExceeded) {
		return stats.ReasonDeadline
	}
	return stats.ReasonCanceled
}

// node is one stored state's position in the trace tree. Under macro-step
// compression an edge covers a whole deterministic run: prefix holds the
// folded events preceding event, prefixIdx the raw successor index taken
// at each folded position, and idx the raw index of the final edge —
// together they spell this state's padded successor-index path, the
// uncompressed BFS's within-level ordering key (see pathLess). depth is
// the micro depth: parent.depth + len(prefix) + 1.
//
// A node restored from a spilled frontier frame has no parent chain:
// base holds its full padded path instead (the spill key), which
// appendNodePath counts toward descendants' order keys and replayPath
// turns back into the trace prefix on failure.
type node struct {
	parent    *node
	prefix    []sem.Event
	prefixIdx []int32
	event     sem.Event
	idx       int32
	depth     int
	base      []int32
}

func (n *node) trace() []sem.Event {
	total := 0
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		total += len(cur.prefix) + 1
	}
	out := make([]sem.Event, total)
	i := total
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		i--
		out[i] = cur.event
		for j := len(cur.prefix) - 1; j >= 0; j-- {
			i--
			out[i] = cur.prefix[j]
		}
	}
	return out
}

// Check explores the sequential program compiled in c. The program must be
// in the sequential fragment (no async, no atomic); transformed programs
// produced by the KISS translation always are.
func Check(c *sem.Compiled, opts Options) *Result {
	if opts.AuditFingerprints {
		// The audit maps shadow the per-statement search's visited inserts
		// one-for-one; compression stores a different (smaller) state set.
		opts.DisableMacroSteps = true
	}
	if opts.SearchWorkers >= 1 && !opts.AuditFingerprints {
		if !opts.DisableMacroSteps {
			return checkMacroBFS(c, opts)
		}
		return checkParallel(c, opts)
	}
	if !opts.DisableMacroSteps {
		if opts.BFS {
			// The macro BFS engine is the parallel engine run inline
			// (SearchWorkers 0): same bucket queue, same counters.
			return checkMacroBFS(c, opts)
		}
		return checkMacroDFS(c, opts)
	}
	res := &Result{}
	init := sem.NewState(c)

	hasher := sem.NewFPHasher()
	visited := map[uint64]struct{}{}
	var audit map[uint64]string // hash -> canonical string of first state
	if opts.AuditFingerprints {
		audit = map[uint64]string{}
	}
	// seen records the state as visited, reporting whether it already was.
	seen := func(st *sem.State) bool {
		fp := hasher.Hash(st)
		if _, ok := visited[fp]; ok {
			if audit != nil && audit[fp] != st.FingerprintString() {
				res.HashCollisions++
			}
			return true
		}
		visited[fp] = struct{}{}
		if audit != nil {
			audit[fp] = st.FingerprintString()
		}
		return false
	}
	seen(init)

	type frame struct {
		st *sem.State
		nd *node
	}
	stack := []frame{{st: init, nd: &node{}}}
	head := 0 // BFS dequeue position; the tail is the DFS top
	res.States = 1
	res.PeakFrontier = 1
	defer func() { res.Visited = len(visited) }()

	ctxCountdown := 1 // poll the context on the first iteration
	for head < len(stack) {
		if opts.Context != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxPollStride
				if err := opts.Context.Err(); err != nil {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(err)
					return res
				}
			}
		}
		var cur frame
		if opts.BFS {
			// Dequeue by head index rather than stack = stack[1:]: reslicing
			// pins the whole backing array (every popped state) for the life
			// of the search. Zeroing the slot frees the frame now, and the
			// occasional compaction lets the array itself shrink.
			cur = stack[head]
			stack[head] = frame{}
			head++
			if head >= 1024 && head*2 >= len(stack) {
				n := copy(stack, stack[head:])
				stack = stack[:n]
				head = 0
			}
		} else {
			cur = stack[len(stack)-1]
			stack[len(stack)-1] = frame{}
			stack = stack[:len(stack)-1]
		}
		if cur.nd.depth > res.PeakDepth {
			res.PeakDepth = cur.nd.depth
		}
		opts.Collector.Sample(res.States, res.Steps, len(stack)-head, cur.nd.depth, len(visited))

		if cur.st.Threads[0].Done() {
			continue
		}
		if opts.MaxDepth > 0 && cur.nd.depth >= opts.MaxDepth {
			continue
		}
		if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
			res.Verdict = ResourceBound
			res.Reason = stats.ReasonSteps
			return res
		}

		sr := sem.Step(cur.st, 0)
		res.Steps++
		if sr.Failure != nil {
			res.Verdict = Error
			res.Failure = sr.Failure
			failEv := sem.Event{
				Kind:     sem.EvStmt,
				ThreadID: sr.Failure.ThreadID,
				Fn:       sr.Failure.Fn,
				Pos:      sr.Failure.Pos,
				Text:     sr.Failure.Msg,
			}
			res.Trace = append(cur.nd.trace(), failEv)
			return res
		}
		// Blocked (false assume) prunes the path in sequential semantics.
		for _, out := range sr.Outcomes {
			if seen(out.State) {
				continue
			}
			res.States++
			if opts.MaxStates > 0 && res.States > opts.MaxStates {
				res.Verdict = ResourceBound
				res.Reason = stats.ReasonStates
				return res
			}
			stack = append(stack, frame{
				st: out.State,
				nd: &node{parent: cur.nd, event: out.Event, depth: cur.nd.depth + 1},
			})
			if fl := len(stack) - head; fl > res.PeakFrontier {
				res.PeakFrontier = fl
			}
		}
	}
	res.Verdict = Safe
	return res
}
