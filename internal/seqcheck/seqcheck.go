// Package seqcheck is an explicit-state model checker for the *sequential*
// fragment of the parallel language — the role SLAM plays in the KISS
// architecture (Figure 1). It understands only sequential semantics: one
// thread, nondeterminism from choice/iter, and the ts intrinsics introduced
// by the KISS transformation. It never interleaves threads.
//
// The checker performs depth-first reachability over canonical state
// fingerprints with configurable state/step budgets (the paper runs SLAM
// under "a resource bound of 20 minutes of CPU time and 800MB of memory";
// our budgets play the same role in the Table 1 experiments). On error it
// returns the full counterexample trace, which package trace maps back to
// an interleaved execution of the original concurrent program.
package seqcheck

import (
	"fmt"

	"repro/internal/sem"
)

// Verdict is the outcome of a check.
type Verdict int

const (
	// Safe: the reachable state space was exhausted without any failure.
	Safe Verdict = iota
	// Error: an assertion failure or runtime error is reachable.
	Error
	// ResourceBound: the state or step budget was exhausted first — the
	// analogue of the paper's per-field timeouts in Table 1.
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Options configure the search budgets. Zero values mean "unlimited".
type Options struct {
	MaxStates int // distinct states explored
	MaxSteps  int // total transitions executed
	MaxDepth  int // maximum trace length considered
	// BFS switches the search to breadth-first order, which makes the
	// returned counterexample a *shortest* error trace. DFS (the default)
	// is faster to a first error and uses less frontier memory.
	BFS bool
	// AuditFingerprints cross-checks the 64-bit visited-set hashes against
	// the canonical string encodings, counting states whose hash collided
	// with a structurally different state in Result.HashCollisions. A
	// collision makes the search treat a new state as visited — a missed
	// state, never a false alarm (the same unsoundness direction as the
	// KISS reduction). Audit mode restores the string encoder's cost and
	// is meant for tests on small programs.
	AuditFingerprints bool
}

// Result reports the verdict along with the witness trace and search
// statistics.
type Result struct {
	Verdict Verdict
	Failure *sem.Failure
	// Trace is the event sequence from the initial state to the failing
	// statement (Error verdicts only).
	Trace  []sem.Event
	States int
	Steps  int
	// HashCollisions counts states whose 64-bit fingerprint collided with
	// a structurally different visited state (AuditFingerprints only).
	HashCollisions int
}

func (r *Result) String() string {
	switch r.Verdict {
	case Error:
		return fmt.Sprintf("error: %s (states=%d steps=%d)", r.Failure, r.States, r.Steps)
	case Safe:
		return fmt.Sprintf("safe (states=%d steps=%d)", r.States, r.Steps)
	default:
		return fmt.Sprintf("resource bound exhausted (states=%d steps=%d)", r.States, r.Steps)
	}
}

type node struct {
	parent *node
	event  sem.Event
	depth  int
}

func (n *node) trace() []sem.Event {
	var rev []sem.Event
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.event)
	}
	out := make([]sem.Event, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Check explores the sequential program compiled in c. The program must be
// in the sequential fragment (no async, no atomic); transformed programs
// produced by the KISS translation always are.
func Check(c *sem.Compiled, opts Options) *Result {
	res := &Result{}
	init := sem.NewState(c)

	hasher := sem.NewFPHasher()
	visited := map[uint64]struct{}{}
	var audit map[uint64]string // hash -> canonical string of first state
	if opts.AuditFingerprints {
		audit = map[uint64]string{}
	}
	// seen records the state as visited, reporting whether it already was.
	seen := func(st *sem.State) bool {
		fp := hasher.Hash(st)
		if _, ok := visited[fp]; ok {
			if audit != nil && audit[fp] != st.FingerprintString() {
				res.HashCollisions++
			}
			return true
		}
		visited[fp] = struct{}{}
		if audit != nil {
			audit[fp] = st.FingerprintString()
		}
		return false
	}
	seen(init)

	type frame struct {
		st *sem.State
		nd *node
	}
	stack := []frame{{st: init, nd: &node{}}}
	head := 0 // BFS dequeue position; the tail is the DFS top
	res.States = 1

	for head < len(stack) {
		var cur frame
		if opts.BFS {
			// Dequeue by head index rather than stack = stack[1:]: reslicing
			// pins the whole backing array (every popped state) for the life
			// of the search. Zeroing the slot frees the frame now, and the
			// occasional compaction lets the array itself shrink.
			cur = stack[head]
			stack[head] = frame{}
			head++
			if head >= 1024 && head*2 >= len(stack) {
				n := copy(stack, stack[head:])
				stack = stack[:n]
				head = 0
			}
		} else {
			cur = stack[len(stack)-1]
			stack[len(stack)-1] = frame{}
			stack = stack[:len(stack)-1]
		}

		if cur.st.Threads[0].Done() {
			continue
		}
		if opts.MaxDepth > 0 && cur.nd.depth >= opts.MaxDepth {
			continue
		}
		if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
			res.Verdict = ResourceBound
			return res
		}

		sr := sem.Step(cur.st, 0)
		res.Steps++
		if sr.Failure != nil {
			res.Verdict = Error
			res.Failure = sr.Failure
			failEv := sem.Event{
				Kind:     sem.EvStmt,
				ThreadID: sr.Failure.ThreadID,
				Fn:       sr.Failure.Fn,
				Pos:      sr.Failure.Pos,
				Text:     sr.Failure.Msg,
			}
			res.Trace = append(cur.nd.trace(), failEv)
			return res
		}
		// Blocked (false assume) prunes the path in sequential semantics.
		for _, out := range sr.Outcomes {
			if seen(out.State) {
				continue
			}
			res.States++
			if opts.MaxStates > 0 && res.States > opts.MaxStates {
				res.Verdict = ResourceBound
				return res
			}
			stack = append(stack, frame{
				st: out.State,
				nd: &node{parent: cur.nd, event: out.Event, depth: cur.nd.depth + 1},
			})
		}
	}
	res.Verdict = Safe
	return res
}
