package seqcheck

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/frontier"
	"repro/internal/sem"
	"repro/internal/stats"
	"repro/internal/visited"
)

// Macro-step compression (sem.MacroStep) folds each maximal deterministic
// run into one transition, so the search stores, fingerprints, and
// visited-checks only decision-point states. Two engines live here:
//
//   - checkMacroDFS, the sequential depth-first search. The per-statement
//     DFS pops a just-pushed single successor immediately, so it already
//     traverses deterministic runs contiguously; folding them changes
//     which states are *stored* but not the traversal order, and the fold
//     limit is capped by the remaining depth/step budget, so the verdict,
//     failure position, counterexample trace, and MaxSteps/MaxDepth trip
//     points are identical to the per-statement DFS.
//
//   - checkMacroBFS, the breadth-first engine used for BFS and for
//     SearchWorkers >= 1 (at 0 it runs the same code inline, which keeps
//     the sequential BFS and the parallel search bit-identical on every
//     deterministic counter). Compressed edges span several micro depths,
//     so a flat level queue would order states by *decision* depth and
//     change which failure is "shortest". Instead the frontier is a
//     bucket queue keyed by micro depth, each bucket sorted by the padded
//     successor-index path — exactly the per-statement BFS's within-level
//     order — and a failure discovered mid-run at micro depth F is held
//     as a candidate until every stored state shallower than F has been
//     expanded, then reported lex-first among depth-F competitors. That
//     reproduces the per-statement BFS's first failure bit-for-bit.
//
// Soundness of the fold (see DESIGN.md): a deterministic run has no
// branching, so its intermediate states can reach exactly the suffix of
// the run; storing only the endpoints preserves the reachable decision
// states and every failure. A run re-executed through an intermediate
// state another path also crosses re-derives the same suffix and is
// pruned at the endpoint by the visited set.

// macroLimit caps a fold by the remaining depth and step budget so that
// failures and budget trips land on exactly the transition where the
// per-statement search puts them.
func macroLimit(opts Options, depth, steps int) int {
	limit := sem.MaxMacroRun
	if opts.MaxDepth > 0 {
		if r := opts.MaxDepth - depth; r < limit {
			limit = r
		}
	}
	if opts.MaxSteps > 0 {
		if r := opts.MaxSteps - steps; r < limit {
			limit = r
		}
	}
	return limit
}

func failEvent(f *sem.Failure) sem.Event {
	return sem.Event{
		Kind:     sem.EvStmt,
		ThreadID: f.ThreadID,
		Fn:       f.Fn,
		Pos:      f.Pos,
		Text:     f.Msg,
	}
}

// checkMacroDFS is the sequential depth-first search with macro-step
// compression.
func checkMacroDFS(c *sem.Compiled, opts Options) *Result {
	res := &Result{}
	init := sem.NewState(c)

	hasher := sem.NewFPHasher()
	// Exact mode keeps the plain map (the seed's representation); compact
	// mode swaps in the Bloom-filter store.
	var vis visited.Store
	if opts.VisitedCompact {
		vis = newVisited(opts)
	}
	visitedSet := map[uint64]struct{}{}
	visLen := func() int {
		if vis != nil {
			return vis.Len()
		}
		return len(visitedSet)
	}
	seen := func(st *sem.State) bool {
		fp := hasher.Hash(st)
		if vis != nil {
			return vis.Seen(fp)
		}
		if _, ok := visitedSet[fp]; ok {
			return true
		}
		visitedSet[fp] = struct{}{}
		return false
	}
	seen(init)

	type frame struct {
		st *sem.State
		nd *node
	}
	stack := []frame{{st: init, nd: &node{}}}
	res.States = 1
	res.StatesStepped = 1
	res.PeakFrontier = 1
	defer func() {
		res.Visited = visLen()
		if vis != nil {
			res.Memory = memoryRecord(opts, vis, frontier.Stats{})
		}
	}()

	ctxCountdown := 1 // poll the context on the first iteration
	for len(stack) > 0 {
		if opts.Context != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxPollStride
				if err := opts.Context.Err(); err != nil {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(err)
					return res
				}
			}
		}
		cur := stack[len(stack)-1]
		stack[len(stack)-1] = frame{}
		stack = stack[:len(stack)-1]
		if cur.nd.depth > res.PeakDepth {
			res.PeakDepth = cur.nd.depth
		}
		opts.Collector.Sample(res.States, res.Steps, len(stack), cur.nd.depth, visLen())

		if cur.st.Threads[0].Done() {
			continue
		}
		if opts.MaxDepth > 0 && cur.nd.depth >= opts.MaxDepth {
			continue
		}
		if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
			res.Verdict = ResourceBound
			res.Reason = stats.ReasonSteps
			return res
		}

		mr := sem.MacroStepMemoSum(cur.st, 0, macroLimit(opts, cur.nd.depth, res.Steps), opts.Memo, opts.Summaries)
		res.Steps += mr.Stepped
		res.StatesStepped += len(mr.Prefix)
		if mr.Failure != nil {
			res.Verdict = Error
			res.Failure = mr.Failure
			res.Trace = append(append(cur.nd.trace(), mr.Prefix...), failEvent(mr.Failure))
			return res
		}
		// Blocked (false assume) prunes the path in sequential semantics.
		for k, out := range mr.Outcomes {
			if seen(out.State) {
				continue
			}
			res.States++
			res.StatesStepped++
			if opts.MaxStates > 0 && res.States > opts.MaxStates {
				res.Verdict = ResourceBound
				res.Reason = stats.ReasonStates
				return res
			}
			stack = append(stack, frame{
				st: out.State,
				nd: &node{
					parent:    cur.nd,
					prefix:    mr.Prefix,
					prefixIdx: mr.PrefixIdx,
					event:     out.Event,
					idx:       mr.OutIdx[k],
					depth:     cur.nd.depth + len(mr.Prefix) + 1,
				},
			})
			if len(stack) > res.PeakFrontier {
				res.PeakFrontier = len(stack)
			}
		}
	}
	res.Verdict = Safe
	return res
}

// pathLess is lexicographic order on padded successor-index paths: for
// each edge, the folded positions' raw indices then the final edge's raw
// index. Two states at the same micro depth have equal-length paths, and
// the per-statement BFS builds each level in exactly lexicographic path
// order, so this comparison reproduces its within-level order. The
// engines compare key-encoded paths with bytes.Compare instead (see
// appendNodePath); pathLess is the specification the encoding is tested
// against.
func pathLess(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// macroCand is a failure discovered mid-run: the per-statement BFS would
// report it while processing micro depth `depth`, so it is held until
// every stored state shallower than that has been expanded. path is the
// failing state's padded path in the frontier's key encoding —
// bytes.Compare on it is pathLess on the index slices.
type macroCand struct {
	depth  int
	path   []byte // padded path of the failing state, key-encoded
	nd     *node  // origin item
	prefix []sem.Event
	fail   *sem.Failure
}

func minCand(cands []macroCand) int {
	h := -1
	for i := range cands {
		if h < 0 || cands[i].depth < cands[h].depth ||
			(cands[i].depth == cands[h].depth && bytes.Compare(cands[i].path, cands[h].path) < 0) {
			h = i
		}
	}
	return h
}

func failFromCand(c *sem.Compiled, res *Result, cd *macroCand) *Result {
	res.Verdict = Error
	res.Failure = cd.fail
	res.Trace = append(append(fullTrace(c, cd.nd), cd.prefix...), failEvent(cd.fail))
	return res
}

// macroSlot is the private output slot for one bucket item.
type macroSlot struct {
	fail      *sem.Failure
	prefix    []sem.Event
	prefixIdx []int32
	exps      []expansion
	stepped   int
	worker    int
	done      bool // the item's thread had terminated: nothing stepped
}

// checkMacroBFS is the micro-depth bucket BFS with macro-step compression;
// SearchWorkers 0 runs it inline, >= 1 expands buckets with the worker
// pool (the commit loop is single-threaded either way, so every
// deterministic counter is identical at every worker count).
//
// The bucket queue is a frontier.Queue in ordered mode: each bucket is
// kept in the per-statement BFS's within-level order by padded-path key,
// resident or spilled. A fully resident bucket streams back as a single
// chunk — the classic whole-bucket pass — while a spilled one arrives in
// frontierChunk pieces merged from disk in exactly the same order, so
// chunking never reorders commits. The fold limit and the bucket's
// competing failure candidate are fixed before the first chunk, which
// keeps them identical to the one-pass computation.
func checkMacroBFS(c *sem.Compiled, opts Options) *Result {
	workers := opts.SearchWorkers
	res := &Result{}
	init := sem.NewState(c)

	vis := newVisited(opts)
	vis.Seen(sem.NewFPHasher().Hash(init))
	res.States = 1
	res.StatesStepped = 1
	res.PeakFrontier = 1
	nworkers := workers
	if nworkers < 1 {
		nworkers = 1
	}
	perWorker := make([]int, nworkers)
	q := newSeqQueue(c, opts, true)
	defer q.Close()
	defer func() {
		res.Visited = vis.Len()
		if workers >= 1 {
			res.Parallel = &stats.Parallel{
				Workers:         workers,
				Shards:          vis.Shards(),
				PerWorkerStates: perWorker,
				ShardContention: vis.Contention(),
			}
		}
		res.Memory = memoryRecord(opts, vis, q.Stats())
	}()

	hashers := make([]*sem.FPHasher, nworkers)
	for i := range hashers {
		hashers[i] = sem.NewFPHasher()
	}

	q.Push(0, pframe{st: init, nd: &node{}})
	var cands []macroCand

	for q.Len() > 0 {
		depth, _ := q.MinDepth()
		res.PeakDepth = depth

		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				res.Verdict = ResourceBound
				res.Reason = reasonFor(err)
				return res
			}
		}
		// A pending candidate shallower than every remaining stored state
		// is the first failure the per-statement BFS reports.
		if h := minCand(cands); h >= 0 && cands[h].depth < depth {
			return failFromCand(c, res, &cands[h])
		}
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			// Buckets come off the queue in increasing depth: nothing at
			// or beyond the depth bound is ever expanded.
			break
		}

		bkt := q.Drain(depth)

		// The fold limit and this bucket's competing candidate are fixed
		// for every chunk: the limit reads the step counter as of the
		// bucket's start, and candidates appended during this bucket's
		// commit are strictly deeper (depth + a nonempty prefix).
		limit := macroLimit(opts, depth, res.Steps)
		candHere := -1
		for i := range cands {
			if cands[i].depth == depth &&
				(candHere < 0 || bytes.Compare(cands[i].path, cands[candHere].path) < 0) {
				candHere = i
			}
		}

		for {
			bucket, keys := bkt.Next(frontierChunk)
			if len(bucket) == 0 {
				break
			}

			// Expansion round (read-only against the visited set).
			slots := make([]macroSlot, len(bucket))
			expandItem := func(i, w int) {
				it := bucket[i]
				if it.st.Threads[0].Done() {
					slots[i] = macroSlot{done: true}
					return
				}
				mr := sem.MacroStepMemoSum(it.st, 0, limit, opts.Memo, opts.Summaries)
				sl := macroSlot{
					prefix:    mr.Prefix,
					prefixIdx: mr.PrefixIdx,
					stepped:   mr.Stepped,
					worker:    w,
					fail:      mr.Failure,
				}
				if mr.Failure == nil {
					exps := expGet()
					for k, out := range mr.Outcomes {
						fp := hashers[w].Hash(out.State)
						if vis.Contains(fp) {
							continue
						}
						exps = append(exps, expansion{out: out, fp: fp, idx: mr.OutIdx[k]})
					}
					sl.exps = exps
				}
				slots[i] = sl
			}
			if workers <= 1 || len(bucket) < minParallelLevel {
				for i := range bucket {
					expandItem(i, 0)
					if opts.Context != nil && i%workerPollStride == workerPollStride-1 {
						if err := opts.Context.Err(); err != nil {
							res.Verdict = ResourceBound
							res.Reason = reasonFor(err)
							return res
						}
					}
				}
			} else {
				var claim atomic.Int64
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						polled := 0
						for {
							i := int(claim.Add(1)) - 1
							if i >= len(bucket) || stop.Load() {
								return
							}
							expandItem(i, w)
							if polled++; polled >= workerPollStride {
								polled = 0
								if opts.Context != nil && opts.Context.Err() != nil {
									stop.Store(true)
									return
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if stop.Load() {
					res.Verdict = ResourceBound
					res.Reason = reasonFor(opts.Context.Err())
					return res
				}
			}

			// Commit: replay the chunk in bucket order through the budget
			// checks; only this loop mutates the visited set and counters.
			for i := range bucket {
				it := bucket[i]
				sl := &slots[i]
				if candHere >= 0 && bytes.Compare(cands[candHere].path, keys[i]) < 0 {
					return failFromCand(c, res, &cands[candHere])
				}
				if sl.done {
					continue
				}
				if opts.MaxSteps > 0 && res.Steps >= opts.MaxSteps {
					res.Verdict = ResourceBound
					res.Reason = stats.ReasonSteps
					return res
				}
				res.Steps += sl.stepped
				res.StatesStepped += len(sl.prefix)
				if sl.fail != nil {
					if len(sl.prefix) == 0 {
						// Failed at this depth: every lex-smaller competitor
						// has already been flushed, so this is the
						// per-statement BFS's first failure.
						res.Verdict = Error
						res.Failure = sl.fail
						res.Trace = append(fullTrace(c, it.nd), failEvent(sl.fail))
						return res
					}
					// Failed mid-run at a deeper micro depth: defer — a
					// shallower or lex-smaller failure may still exist.
					// keys[i] is reused by the next chunk; copy it.
					p := append([]byte(nil), keys[i]...)
					for _, idx := range sl.prefixIdx {
						p = appendPathIdx(p, idx)
					}
					cands = append(cands, macroCand{
						depth:  depth + len(sl.prefix),
						path:   p,
						nd:     it.nd,
						prefix: sl.prefix,
						fail:   sl.fail,
					})
					continue
				}
				for _, ex := range sl.exps {
					if vis.Seen(ex.fp) {
						continue // claimed by an earlier item of some bucket
					}
					perWorker[sl.worker]++
					res.States++
					res.StatesStepped++
					if opts.MaxStates > 0 && res.States > opts.MaxStates {
						res.Verdict = ResourceBound
						res.Reason = stats.ReasonStates
						return res
					}
					nd := &node{
						parent:    it.nd,
						prefix:    sl.prefix,
						prefixIdx: sl.prefixIdx,
						event:     ex.out.Event,
						idx:       ex.idx,
						depth:     depth + len(sl.prefix) + 1,
					}
					q.Push(nd.depth, pframe{st: ex.out.State, nd: nd})
				}
				expPut(sl.exps)
				sl.exps = nil
			}
		}
		bkt.Close()
		// Depth-bucket candidates with paths beyond the last item beat
		// everything deeper.
		if candHere >= 0 {
			return failFromCand(c, res, &cands[candHere])
		}
		if q.Len() > res.PeakFrontier {
			res.PeakFrontier = q.Len()
		}
		opts.Collector.Sample(res.States, res.Steps, q.Len(), depth, vis.Len())
	}
	if h := minCand(cands); h >= 0 {
		return failFromCand(c, res, &cands[h])
	}
	res.Verdict = Safe
	return res
}
