package seqcheck

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/randprog"
)

// stripMemory drops the memory diagnostics — present only when spilling
// or the compact visited set is on, and therefore necessarily different
// between a spilled arm and a resident arm of the same search.
func stripMemory(r Result) Result {
	r.Memory = nil
	return r
}

// TestSpillIdenticalToResident: the disk-spilling frontier is eviction
// only. With a budget tiny enough to spill every bucket, the whole
// Result — verdict, trace, and every deterministic counter — is
// bit-identical to the fully resident search, for every BFS engine
// (macro bucket and per-statement level), sequential and parallel,
// including runs that trip a budget mid-level.
func TestSpillIdenticalToResident(t *testing.T) {
	engines := []Options{
		{BFS: true}, // sequential macro bucket BFS (workers 0)
		{SearchWorkers: 1},
		{SearchWorkers: 8},
		{SearchWorkers: 1, DisableMacroSteps: true},
		{SearchWorkers: 8, DisableMacroSteps: true},
		{SearchWorkers: 8, MaxStates: 150},
		{SearchWorkers: 8, MaxSteps: 300, DisableMacroSteps: true},
	}
	var spilled int64
	errors := 0
	for seed := int64(0); seed < 12; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for ei, eng := range engines {
			resident := stripMemory(stripParallel(Check(compile(t, src, 0), eng)))
			on := eng
			on.FrontierBudget = 2048
			on.SpillDir = t.TempDir()
			got := Check(compile(t, src, 0), on)
			if got.Memory != nil {
				spilled += got.Memory.SpilledFrames
			}
			if spilledRes := stripMemory(stripParallel(got)); !reflect.DeepEqual(resident, spilledRes) {
				t.Errorf("seed %d engine %d: resident vs spilled:\n  %+v\n  %+v",
					seed, ei, resident, spilledRes)
			}
			if resident.Verdict == Error {
				errors++
			}
		}
	}
	if spilled == 0 {
		t.Error("no frames ever spilled; identity vacuous")
	}
	if errors == 0 {
		t.Error("no erroring programs; trace identity vacuous")
	}
}

// TestPathKeyEncodingMatchesSpec: bytes.Compare on the frontier's key
// encoding is exactly pathLess on the entry slices — including the
// shorter-prefix-first tiebreak and multi-byte entry values.
func TestPathKeyEncodingMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randPath := func() []int32 {
		p := make([]int32, rng.Intn(6))
		for i := range p {
			if rng.Intn(8) == 0 {
				p[i] = rng.Int31() // exercise high bytes
			} else {
				p[i] = int32(rng.Intn(5))
			}
		}
		return p
	}
	encode := func(p []int32) []byte {
		var buf []byte
		for _, idx := range p {
			buf = appendPathIdx(buf, idx)
		}
		return buf
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := randPath(), randPath()
		cmp := bytes.Compare(encode(a), encode(b))
		want := 0
		if pathLess(a, b) {
			want = -1
		} else if pathLess(b, a) {
			want = 1
		}
		if cmp != want {
			t.Fatalf("trial %d: bytes.Compare=%d, pathLess spec says %d\n  a=%v\n  b=%v",
				trial, cmp, want, a, b)
		}
	}
}

// TestPathKeyRoundTrip: decodePathKey inverts the encoding, so a node
// restored from disk carries the exact padded path of the frame that was
// spilled.
func TestPathKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := make([]int32, rng.Intn(10))
		for i := range p {
			p[i] = rng.Int31()
		}
		var buf []byte
		for _, idx := range p {
			buf = appendPathIdx(buf, idx)
		}
		got := decodePathKey(buf)
		if len(got) == 0 && len(p) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("trial %d: round trip %v -> %v", trial, p, got)
		}
	}
}

// TestCompactVisitedShrinkOnly: a Bloom false positive marks a fresh
// state as already seen, so the compact visited set can only ever
// *shrink* the explored set — never flip a reachable failure into a
// fabricated one. On the randprog differential corpus: compact States ≤
// exact States at every filter size; a healthily sized filter reproduces
// the exact verdict (in particular never unsafe→safe); a deliberately
// starved one may miss failures but must never invent one.
func TestCompactVisitedShrinkOnly(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 25; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, w := range []int{0, 1, 8} {
			base := Options{SearchWorkers: w, MaxStates: 100000}
			exact := Check(compile(t, src, 0), base)
			healthyOpts := base
			healthyOpts.VisitedCompact = true
			healthyOpts.VisitedBytes = 1 << 20
			healthy := Check(compile(t, src, 0), healthyOpts)
			tinyOpts := base
			tinyOpts.VisitedCompact = true
			tinyOpts.VisitedBytes = 64
			tiny := Check(compile(t, src, 0), tinyOpts)

			if healthy.States > exact.States {
				t.Errorf("seed %d workers %d: healthy compact explored more states (%d) than exact (%d)",
					seed, w, healthy.States, exact.States)
			}
			if tiny.States > exact.States {
				t.Errorf("seed %d workers %d: starved compact explored more states (%d) than exact (%d)",
					seed, w, tiny.States, exact.States)
			}
			if exact.Verdict == ResourceBound {
				continue
			}
			// ~2^20 filter bits for a few thousand states: the chance of
			// any false positive is negligible, so the verdicts must match.
			if healthy.Verdict != exact.Verdict {
				t.Errorf("seed %d workers %d: healthy compact verdict %v, exact %v\n%s",
					seed, w, healthy.Verdict, exact.Verdict, src)
			}
			if exact.Verdict == Error {
				errors++
			}
			// Pruning cannot fabricate a trace: a failure the starved
			// filter reports must exist in the exact search too.
			if tiny.Verdict == Error && exact.Verdict != Error {
				t.Errorf("seed %d workers %d: starved compact invented a failure\n%s", seed, w, src)
			}
			if healthy.Memory == nil || healthy.Memory.VisitedMode != "compact" {
				t.Errorf("seed %d workers %d: compact run missing memory diagnostics: %+v",
					seed, w, healthy.Memory)
			}
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; verdict preservation vacuous")
	}
}

// TestAuditVisitedCountsFalsePositives: AuditVisited shadows the filter
// with an exact set and counts measured false positives without changing
// the search. A single-block filter fed 2^12 states must saturate and
// register misses.
func TestAuditVisitedCountsFalsePositives(t *testing.T) {
	src := wideChoiceSrc(12)
	base := Options{SearchWorkers: 1, VisitedCompact: true, VisitedBytes: 64}
	bare := stripParallel(Check(compile(t, src, 0), base))
	audit := base
	audit.AuditVisited = true
	audited := Check(compile(t, src, 0), audit)

	if audited.Memory == nil || audited.Memory.VisitedMode != "compact" {
		t.Fatalf("audited run missing memory diagnostics: %+v", audited.Memory)
	}
	if audited.Memory.VisitedFalsePositives == 0 {
		t.Error("2^12 states through a 512-bit filter produced no measured false positives")
	}
	exact := Check(compile(t, src, 0), Options{SearchWorkers: 1})
	if audited.States >= exact.States {
		t.Errorf("starved filter did not shrink the search: compact %d states, exact %d",
			audited.States, exact.States)
	}
	// The audit is observation only: same search as the bare filter.
	got := stripMemory(stripParallel(audited))
	want := stripMemory(bare)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("audit changed the search:\n  bare    %+v\n  audited %+v", want, got)
	}
}
