package seqcheck

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/randprog"
)

// stripParallel drops the scheduling-dependent worker diagnostics, leaving
// exactly the fields the commit-replay design promises are bit-identical
// at every worker count.
func stripParallel(r *Result) Result {
	cp := *r
	cp.Parallel = nil
	return cp
}

// TestParallelIdenticalAcrossWorkerCounts: the whole Result — verdict,
// trace, and every deterministic counter — is bit-identical at worker
// counts 1, 2, and 8, across random programs and across budget shapes
// (including budgets that trip mid-search, the hard case for parallel
// determinism).
func TestParallelIdenticalAcrossWorkerCounts(t *testing.T) {
	budgets := []Options{
		{},
		{MaxStates: 200},
		{MaxSteps: 300},
		{MaxDepth: 10},
	}
	for seed := int64(0); seed < 25; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for bi, b := range budgets {
			var base Result
			for _, w := range []int{1, 2, 8} {
				opts := b
				opts.SearchWorkers = w
				got := stripParallel(Check(compile(t, src, 0), opts))
				if w == 1 {
					base = got
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("seed %d budget %d: workers=1 vs workers=%d:\n  %+v\n  %+v",
						seed, bi, w, base, got)
				}
			}
		}
	}
}

// TestParallelAgreesWithSequential: on full explorations (no budget trip)
// the parallel search and the classic sequential BFS agree on the verdict
// and on the order-independent counters (States, Steps, Visited).
func TestParallelAgreesWithSequential(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 40; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		seq := Check(compile(t, src, 0), Options{BFS: true, MaxStates: 100000})
		par := Check(compile(t, src, 0), Options{SearchWorkers: 4, MaxStates: 100000})
		if seq.Verdict == ResourceBound || par.Verdict == ResourceBound {
			continue
		}
		if seq.Verdict != par.Verdict {
			t.Errorf("seed %d: sequential %v, parallel %v\n%s", seed, seq.Verdict, par.Verdict, src)
			continue
		}
		if seq.Verdict == Error {
			errors++
			continue
		}
		if seq.States != par.States || seq.Steps != par.Steps || seq.Visited != par.Visited {
			t.Errorf("seed %d: counters diverge: sequential states=%d steps=%d visited=%d, parallel states=%d steps=%d visited=%d",
				seed, seq.States, seq.Steps, seq.Visited, par.States, par.Steps, par.Visited)
		}
	}
	if errors == 0 {
		t.Error("no erroring programs; verdict agreement vacuous")
	}
}

// wideChoiceSrc builds a program with 2^k distinct leaf states — a state
// space wide enough to keep the worker pool busy.
func wideChoiceSrc(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "var x%d;\n", i)
	}
	b.WriteString("func main() {\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "  choice { { x%d = 1; } [] { x%d = 2; } }\n", i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

// TestParallelWideStateSpace: exact state accounting on a space whose size
// is known in closed form, identical at every worker count.
func TestParallelWideStateSpace(t *testing.T) {
	src := wideChoiceSrc(10)
	var base Result
	for _, w := range []int{1, 3, 8} {
		got := stripParallel(Check(compile(t, src, 0), Options{SearchWorkers: w}))
		if got.Verdict != Safe {
			t.Fatalf("workers=%d: want safe, got %v", w, got.Verdict)
		}
		if w == 1 {
			base = got
			if base.States < 1<<10 {
				t.Fatalf("implausibly few states for 10 binary choices: %d", base.States)
			}
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=1 vs workers=%d:\n  %+v\n  %+v", w, base, got)
		}
	}
}

// TestParallelCancellationNoGoroutineLeak: a deadline that fires mid-search
// stops the worker pool; no goroutine outlives Check.
func TestParallelCancellationNoGoroutineLeak(t *testing.T) {
	c := compile(t, wideChoiceSrc(20), 0)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		r := Check(c, Options{SearchWorkers: 8, Context: ctx})
		cancel()
		if r.Verdict != ResourceBound {
			t.Fatalf("run %d: 2^20 states in 5ms is implausible; got %v", i, r.Verdict)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
