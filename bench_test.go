package kiss_test

// Benchmark harness: one benchmark per table/figure/experiment of the
// paper, plus ablations for the design choices called out in DESIGN.md.
// See EXPERIMENTS.md for the mapping. Each heavy benchmark reports
// domain metrics (states explored, races found) alongside ns/op.

import (
	"fmt"
	"runtime"
	"testing"

	kiss "repro"
	"repro/internal/drivers"
	"repro/internal/eval"
)

// BenchmarkTable1 regenerates Table 1: per-field race checking of all 18
// drivers (481 fields) under the permissive harness at ts bound 0, with
// one sub-benchmark per worker-pool setting (workers=1 is the sequential
// baseline; workers=gomaxprocs is the default RunCorpus configuration).
func BenchmarkTable1(b *testing.B) {
	configs := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), 0},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			races, states := 0, 0
			for i := 0; i < b.N; i++ {
				results, err := eval.RunCorpus(eval.Options{Workers: cfg.workers})
				if err != nil {
					b.Fatal(err)
				}
				if ms := eval.CompareTable1(results); len(ms) != 0 {
					b.Fatalf("table 1 mismatch: %v", ms)
				}
				races = 0
				for _, dr := range results {
					races += dr.Races
					for _, fr := range dr.Fields {
						states += fr.States
					}
				}
			}
			b.ReportMetric(float64(races), "races")
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the refined-harness rerun of the
// fields that raced in Table 1.
func BenchmarkTable2(b *testing.B) {
	t1, err := eval.RunCorpus(eval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	raced := eval.RacedFields(t1)
	b.ReportAllocs()
	b.ResetTimer()
	races, states := 0, 0
	for i := 0; i < b.N; i++ {
		t2, err := eval.RunCorpus(eval.Options{Refined: true, Only: raced})
		if err != nil {
			b.Fatal(err)
		}
		if ms := eval.CompareTable2(t2); len(ms) != 0 {
			b.Fatalf("table 2 mismatch: %v", ms)
		}
		races = 0
		for _, dr := range t2 {
			races += dr.Races
			for _, fr := range dr.Fields {
				states += fr.States
			}
		}
	}
	b.ReportMetric(float64(races), "races")
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
}

// BenchmarkTable1SingleDriver is the per-driver unit of the Table 1 run
// (the paper's per-driver rows), on the Figure 6 driver.
func BenchmarkTable1SingleDriver(b *testing.B) {
	sel := map[string]bool{"toaster/toastmon": true}
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		results, err := eval.RunCorpus(eval.Options{Drivers: sel})
		if err != nil {
			b.Fatal(err)
		}
		for _, dr := range results {
			for _, fr := range dr.Fields {
				states += fr.States
			}
		}
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
}

// BenchmarkRefcount regenerates the Section 6 reference-counting
// experiment (Bluetooth buggy/fixed, fakemodem; assertion mode, ts 0/1).
func BenchmarkRefcount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunRefcount()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Verdict != r.Expected {
				b.Fatalf("%s: verdict %v, want %v", r.Driver, r.Verdict, r.Expected)
			}
		}
	}
}

// BenchmarkBlowup regenerates the interleaving-blowup study (the Section 1
// motivation): interleaving exploration vs the KISS pipeline as thread
// count grows.
func BenchmarkBlowup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunBlowup(6)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.ConcheckStates), "conStates")
		b.ReportMetric(float64(last.KissStates), "kissStates")
	}
}

// BenchmarkCoverage regenerates the ts coverage/cost study (the Section 4
// tuning knob).
func BenchmarkCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunCoverage(4, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Found != (r.MaxTS >= r.BugDepth) {
				b.Fatalf("coverage grid wrong at depth=%d ts=%d", r.BugDepth, r.MaxTS)
			}
		}
	}
}

// BenchmarkLocksetComparison regenerates the Section 6.1 flexibility
// comparison (lockset baseline vs KISS over the corpus).
func BenchmarkLocksetComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunLocksetComparison()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.LocksetRacy
		}
		if total != 71 {
			b.Fatalf("lockset total %d, want 71", total)
		}
	}
}

// BenchmarkContextBound regenerates the context-bound coverage study.
func BenchmarkContextBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := eval.RunContextBound(40, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.KissErrors), "kissErrors")
	}
}

// BenchmarkSummaryVsExplicit compares the two sequential engines on the
// same KISS-transformed program: the explicit-state explorer (seqcheck)
// and the summary-based tabulation (boolcheck, the Bebop/RHS
// architecture).
func BenchmarkSummaryVsExplicit(b *testing.B) {
	src := `
var x;
var y;
func f() {
  assume(y == 1);
  x = x + 1;
  assert(x < 4);
}
func main() {
  x = 0; y = 0;
  async f(); async f(); async f(); async f();
  y = 1;
}
`
	b.Run("explicit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := kiss.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			res, err := kiss.Check(prog, kiss.WithMaxTS(4))
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != kiss.Error {
				b.Fatal("bug not found")
			}
			b.ReportMetric(float64(res.States), "states")
		}
	})
	b.Run("summaries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := kiss.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			res, err := kiss.Check(prog, kiss.WithMaxTS(4), kiss.WithSummaries())
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != kiss.Error {
				b.Fatal("bug not found")
			}
			b.ReportMetric(float64(res.States), "pathEdges")
		}
	})
}

// BenchmarkBluetoothRace is the Section 2.2 experiment: race on
// stoppingFlag at ts bound 0.
func BenchmarkBluetoothRace(b *testing.B) {
	prog, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kiss.Check(prog, kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}))
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != kiss.Error {
			b.Fatal("race not found")
		}
	}
}

// BenchmarkBluetoothAssertion is the Section 2.3 experiment: the
// assertion violation at ts bound 1.
func BenchmarkBluetoothAssertion(b *testing.B) {
	prog, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kiss.Check(prog, kiss.WithMaxTS(1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != kiss.Error {
			b.Fatal("assertion violation not found")
		}
	}
}

// BenchmarkTsKnobCost is the ablation behind the Section 2 claim that
// increasing ts trades cost for coverage: states explored on the fixed
// (safe) Bluetooth driver at increasing ts bounds.
func BenchmarkTsKnobCost(b *testing.B) {
	prog, err := kiss.Parse(drivers.BluetoothFixedSource)
	if err != nil {
		b.Fatal(err)
	}
	for _, maxTS := range []int{0, 1, 2, 3} {
		b.Run(tsName(maxTS), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := kiss.Check(prog, kiss.WithMaxTS(maxTS))
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != kiss.Safe {
					b.Fatal("fixed driver must be safe")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

func tsName(n int) string { return "ts=" + string(rune('0'+n)) }

// BenchmarkAliasElision is the ablation for the Section 5 design choice:
// "We use a static alias analysis to optimize away most of the calls to
// check_r and check_w." It compares the race-checking state space on a
// driver field with and without elision.
func BenchmarkAliasElision(b *testing.B) {
	model := drivers.Generate(drivers.FindSpec("fdc"))
	var field string
	for _, f := range model.Spec.Fields {
		if f.Pattern == drivers.FieldProtected {
			field = f.Name
			break
		}
	}
	src := model.HarnessProgram(field, false)
	target := kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: field}

	for _, disable := range []bool{false, true} {
		name := "elision-on"
		if disable {
			name = "elision-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := kiss.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				res, err := (&kiss.Config{RaceTarget: &target, DisableAliasElision: disable, MaxStates: 500000}).Check(prog)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// BenchmarkTransformOnly measures the transformation itself (excluding
// checking) on the largest corpus driver — the paper's claim that the
// instrumentation is a "small constant blowup".
func BenchmarkTransformOnly(b *testing.B) {
	model := drivers.Generate(drivers.FindSpec("fdc"))
	src := model.HarnessProgram("Flags", false)
	prog, err := kiss.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kiss.NewConfig().TransformRace(prog, kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "Flags"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures the front end on the largest generated model.
func BenchmarkParse(b *testing.B) {
	model := drivers.Generate(drivers.FindSpec("fdc"))
	src := model.HarnessProgram("Flags", false)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kiss.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerVariants is the ablation for Section 4's pluggable
// scheduler: states explored by each scheduling policy on a safe program
// with two deferred forks.
func BenchmarkSchedulerVariants(b *testing.B) {
	src := `
var x;
func f() { x = x + 1; }
func main() {
  x = 0;
  async f();
  async f();
  x = x + 1;
  x = x + 1;
}
`
	for _, sched := range []kiss.Scheduler{kiss.SchedulerNondet, kiss.SchedulerDrainAll, kiss.SchedulerAtCallsOnly} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := kiss.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				res, err := kiss.Check(prog, kiss.WithMaxTS(2), kiss.WithScheduler(sched))
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != kiss.Safe {
					b.Fatal("expected safe")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}
