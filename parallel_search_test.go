package kiss_test

import (
	"testing"

	kiss "repro"
	"repro/internal/drivers"
)

// TestParallelSearchCertifiesTrace: the full pipeline under a parallel
// search — transform, check with workers, reconstruct the concurrent
// trace, and certify it by guided replay on the original program. The
// reconstructed schedule must stay valid whatever the worker count.
func TestParallelSearchCertifiesTrace(t *testing.T) {
	const src = `
var x;
func worker() { x = 1; }
func main() {
  x = 0;
  async worker();
  assert(x == 0);
}
`
	prog, err := kiss.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		cfg := kiss.NewConfig(kiss.WithMaxTS(1), kiss.WithSearchWorkers(w))
		res, err := cfg.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != kiss.Error {
			t.Fatalf("workers=%d: want error, got %v", w, res.Verdict)
		}
		if res.Stats.Parallel == nil || res.Stats.Parallel.Workers != w {
			t.Fatalf("workers=%d: parallel diagnostics missing or wrong: %+v", w, res.Stats.Parallel)
		}
		ok, err := cfg.Certify(prog, res)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("workers=%d: reconstructed trace failed to certify", w)
		}
	}
}

// TestParallelSearchMatchesSequentialOnDriver: the Bluetooth driver race
// of Section 2.2 reports the same verdict and state count under the
// sequential search and under parallel searches of different widths.
func TestParallelSearchMatchesSequentialOnDriver(t *testing.T) {
	prog, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatal(err)
	}
	target := kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}
	seq, err := kiss.Check(prog, kiss.WithRaceTarget(target))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		cfg := kiss.NewConfig(kiss.WithMaxTS(0), kiss.WithRaceTarget(target), kiss.WithSearchWorkers(w))
		par, err := cfg.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		if par.Verdict != seq.Verdict {
			t.Errorf("workers=%d: verdict %v, sequential %v", w, par.Verdict, seq.Verdict)
		}
	}
}
