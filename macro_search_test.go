package kiss_test

import (
	"testing"

	kiss "repro"
	"repro/internal/drivers"
)

// TestMacroStepsCertifyOnDriver: the full pipeline with macro-step
// compression — transform, check the Bluetooth race of Section 2.2,
// reconstruct the concurrent trace, and certify it by guided replay on
// the original program. The compressed search must find the same race at
// the same position as the per-statement search at every worker count,
// with strictly fewer stored states, and its reconstructed schedule must
// replay.
func TestMacroStepsCertifyOnDriver(t *testing.T) {
	prog, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatal(err)
	}
	target := kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}

	refCfg := kiss.NewConfig(kiss.WithMaxTS(0), kiss.WithRaceTarget(target), kiss.WithMacroSteps(false))
	ref, err := refCfg.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Verdict != kiss.Error {
		t.Fatalf("per-statement search missed the stoppingFlag race: %v", ref.Verdict)
	}

	for _, w := range []int{0, 1, 8} {
		cfg := kiss.NewConfig(kiss.WithMaxTS(0), kiss.WithRaceTarget(target),
			kiss.WithSearchWorkers(w), kiss.WithMacroSteps(true))
		res, err := cfg.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != kiss.Error {
			t.Fatalf("workers=%d: compressed search missed the race: %v", w, res.Verdict)
		}
		if res.Pos != ref.Pos {
			t.Errorf("workers=%d: race position %v, per-statement search reports %v", w, res.Pos, ref.Pos)
		}
		if res.States >= ref.States {
			t.Errorf("workers=%d: compression stored %d states, per-statement stored %d",
				w, res.States, ref.States)
		}
		if res.Stats.StatesStepped < res.States {
			t.Errorf("workers=%d: StatesStepped %d < stored %d", w, res.Stats.StatesStepped, res.States)
		}
		if res.Stats.CompressionRatio <= 1 {
			t.Errorf("workers=%d: compression ratio %.2f not > 1", w, res.Stats.CompressionRatio)
		}
		ok, err := cfg.Certify(prog, res)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("workers=%d: compressed search's reconstructed trace failed to certify", w)
		}
	}
}

// TestMacroStepsOffReproducesSeedCounters: WithMacroSteps(false) restores
// the per-statement search: StatesStepped equals stored states and the
// compression ratio reports 1.
func TestMacroStepsOffReproducesSeedCounters(t *testing.T) {
	prog, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kiss.NewConfig(kiss.WithMaxTS(0),
		kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}),
		kiss.WithMacroSteps(false))
	res, err := cfg.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StatesStepped != res.States {
		t.Errorf("uncompressed StatesStepped %d != States %d", res.Stats.StatesStepped, res.States)
	}
	if res.Stats.CompressionRatio != 1 {
		t.Errorf("uncompressed compression ratio %v != 1", res.Stats.CompressionRatio)
	}
}
