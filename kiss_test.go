package kiss

import (
	"strings"
	"testing"

	"repro/internal/drivers"
)

// TestBluetoothRaceTS0 reproduces Section 2.2: the race condition on the
// stoppingFlag field of the Bluetooth device extension is exposed with the
// ts bound set to 0.
func TestBluetoothRaceTS0(t *testing.T) {
	prog, err := Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatalf("parse bluetooth: %v", err)
	}
	res, err := Check(prog, WithRaceTarget(RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}))
	if err != nil {
		t.Fatalf("race check: %v", err)
	}
	if res.Verdict != Error {
		t.Fatalf("want race detected on stoppingFlag with ts=0, got %v (states=%d)", res.Verdict, res.States)
	}
	if res.Trace == nil || len(res.Trace.Steps) == 0 {
		t.Fatalf("want reconstructed concurrent trace, got none")
	}
	t.Logf("race trace:\n%s", res.Trace.Format())
}

// TestBluetoothAssertionNeedsTS1 reproduces Section 2.3: the reference-
// counting assertion violation cannot be simulated with ts bound 0 but is
// found with ts bound 1.
func TestBluetoothAssertionNeedsTS1(t *testing.T) {
	prog, err := Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatalf("parse bluetooth: %v", err)
	}

	res0, err := Check(prog, WithMaxTS(0))
	if err != nil {
		t.Fatalf("Check ts=0: %v", err)
	}
	if res0.Verdict != Safe {
		t.Fatalf("ts=0: want safe (violation not simulable), got %v: %s", res0.Verdict, res0.Message)
	}

	res1, err := Check(prog, WithMaxTS(1))
	if err != nil {
		t.Fatalf("Check ts=1: %v", err)
	}
	if res1.Verdict != Error {
		t.Fatalf("ts=1: want assertion violation, got %v (states=%d)", res1.Verdict, res1.States)
	}
	if !strings.Contains(res1.Message, "stopped") {
		t.Errorf("want violation of assert(!stopped), got %q", res1.Message)
	}
	t.Logf("assertion trace (ts=1):\n%s", res1.Trace.Format())
}

// TestBluetoothFixedIsSafe reproduces the end of Section 6: after the fix
// suggested by the driver quality team, KISS reports no errors.
func TestBluetoothFixedIsSafe(t *testing.T) {
	prog, err := Parse(drivers.BluetoothFixedSource)
	if err != nil {
		t.Fatalf("parse fixed bluetooth: %v", err)
	}
	for _, maxTS := range []int{0, 1, 2} {
		res, err := Check(prog, WithMaxTS(maxTS))
		if err != nil {
			t.Fatalf("Check ts=%d: %v", maxTS, err)
		}
		if res.Verdict != Safe {
			t.Errorf("fixed driver, ts=%d: want safe, got %v: %s", maxTS, res.Verdict, res.Message)
		}
	}
}

// TestBluetoothConcurrentGroundTruth certifies KISS's verdicts against the
// interleaving-exploring checker on the original concurrent program: the
// buggy driver's assertion violation is real, and the fixed driver is safe
// under full interleaving exploration — so the KISS reports above are not
// false errors.
func TestBluetoothConcurrentGroundTruth(t *testing.T) {
	buggy, err := Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Explore(buggy)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Verdict != Error {
		t.Fatalf("concurrent exploration of buggy driver: want error, got %v", res.Verdict)
	}

	fixed, err := Parse(drivers.BluetoothFixedSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err = Explore(fixed)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Verdict != Safe {
		t.Fatalf("concurrent exploration of fixed driver: want safe, got %v: %s", res.Verdict, res.Message)
	}
}

// TestSummaryEngineAgreesOnBluetoothShapedPrograms: the summary-based
// sequential engine (Bebop/RHS architecture) reaches the same verdicts as
// the explicit-state engine on pointer-free programs, and terminates on a
// recursive program the explicit-state engine cannot finish.
func TestSummaryEngine(t *testing.T) {
	racy := `
var x;
var y;
func child() {
  assume(y == 1);
  x = x + 1;
  assert(x < 2);
}
func main() {
  x = 0;
  y = 0;
  async child();
  async child();
  y = 1;
}
`
	prog, err := Parse(racy)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Check(prog, WithMaxTS(2))
	if err != nil {
		t.Fatal(err)
	}
	summary, err := Check(prog, WithMaxTS(2), WithSummaries())
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Verdict != Error || summary.Verdict != Error {
		t.Fatalf("engines disagree: explicit=%v summary=%v", explicit.Verdict, summary.Verdict)
	}

	recursive := `
var g;
func walk() {
  choice { { skip; } [] { walk(); } }
}
func main() {
  g = 0;
  walk();
  assert(g == 0);
}
`
	rprog, err := Parse(recursive)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Check(rprog, WithSummaries())
	if err != nil {
		t.Fatal(err)
	}
	if sres.Verdict != Safe {
		t.Fatalf("summary engine on recursion: want safe, got %v", sres.Verdict)
	}
	eres, err := Check(rprog, WithMaxStates(2000))
	if err != nil {
		t.Fatal(err)
	}
	if eres.Verdict != ResourceBound {
		t.Fatalf("explicit engine on recursion: want resource-bound, got %v", eres.Verdict)
	}
}

// TestSummaryEngineRejectsPointerPrograms: the bluetooth model uses the
// heap, which is outside the summary engine's fragment.
func TestSummaryEngineRejectsPointerPrograms(t *testing.T) {
	prog, err := Parse(drivers.BluetoothSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog, WithMaxTS(1), WithSummaries()); err == nil {
		t.Fatal("heap-using program accepted by the summary engine")
	}
}
