package kiss

import (
	"testing"

	"repro/internal/randprog"
)

// Scheduler-variant tests, for Section 4's remark that "a more
// sophisticated scheduler can be provided by writing a different
// implementation of schedule". The variants trade coverage for cost but
// must stay sound (no false errors).

// stagedBugSrc needs a *partial* drain: f1 must run while x == 1 with f2
// still deferred, and f2 only later when x == 2. The drain-all scheduler
// runs both together, so the f2 instance blocks and the whole drain path
// dies — it misses this bug; the paper's nondeterministic scheduler finds
// it.
const stagedBugSrc = `
var x;
var y;
func f1() { assume(x == 1); y = 1; }
func f2() { assume(x == 2); assume(y == 1); y = 2; }
func main() {
  x = 0; y = 0;
  async f1();
  async f2();
  x = 1;
  x = 2;
  assert(!(y == 2));
}
`

// straightLineBugSrc needs a context switch between two straight-line
// statements of main (no call in between), which the at-calls-only
// placement cannot provide.
const straightLineBugSrc = `
var x;
var y;
var z;
func f() { assume(x == 1); y = 1; }
func main() {
  x = 0; y = 0;
  async f();
  x = 1;
  x = 2;
  z = y;
  assert(z == 0);
}
`

func checkWith(t *testing.T, src string, sched Scheduler, maxTS int) Verdict {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Check(prog, WithMaxTS(maxTS), WithScheduler(sched))
	if err != nil {
		t.Fatal(err)
	}
	return res.Verdict
}

func TestDrainAllMissesStagedBug(t *testing.T) {
	if v := checkWith(t, stagedBugSrc, SchedulerNondet, 2); v != Error {
		t.Fatalf("nondet scheduler must find the staged bug, got %v", v)
	}
	if v := checkWith(t, stagedBugSrc, SchedulerDrainAll, 2); v != Safe {
		t.Fatalf("drain-all scheduler should miss the staged bug (coverage cut), got %v", v)
	}
}

func TestAtCallsOnlyMissesStraightLineBug(t *testing.T) {
	if v := checkWith(t, straightLineBugSrc, SchedulerNondet, 1); v != Error {
		t.Fatalf("nondet scheduler must find the straight-line bug, got %v", v)
	}
	if v := checkWith(t, straightLineBugSrc, SchedulerAtCallsOnly, 1); v != Safe {
		t.Fatalf("at-calls-only scheduler should miss the straight-line bug, got %v", v)
	}
}

// TestSchedulerVariantsCheaper: the restricted schedulers explore fewer
// states on the same (safe) program.
func TestSchedulerVariantsCheaper(t *testing.T) {
	src := `
var x;
func f() { x = x + 1; }
func main() {
  x = 0;
  async f();
  async f();
  x = x + 1;
  x = x + 1;
}
`
	states := map[Scheduler]int{}
	for _, sched := range []Scheduler{SchedulerNondet, SchedulerDrainAll, SchedulerAtCallsOnly} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Check(prog, WithMaxTS(2), WithScheduler(sched))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Safe {
			t.Fatalf("%v: want safe, got %v", sched, res.Verdict)
		}
		states[sched] = res.States
	}
	t.Logf("states: nondet=%d drain-all=%d at-calls-only=%d",
		states[SchedulerNondet], states[SchedulerDrainAll], states[SchedulerAtCallsOnly])
	if states[SchedulerDrainAll] >= states[SchedulerNondet] {
		t.Errorf("drain-all (%d states) not cheaper than nondet (%d)",
			states[SchedulerDrainAll], states[SchedulerNondet])
	}
	if states[SchedulerAtCallsOnly] >= states[SchedulerNondet] {
		t.Errorf("at-calls-only (%d states) not cheaper than nondet (%d)",
			states[SchedulerAtCallsOnly], states[SchedulerNondet])
	}
}

// TestSchedulerVariantsSound: no scheduler variant reports a false error —
// the under-approximation only shrinks, never grows.
func TestSchedulerVariantsSound(t *testing.T) {
	validated := 0
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, sched := range []Scheduler{SchedulerDrainAll, SchedulerAtCallsOnly} {
			prog := mustParse(t, src)
			res, err := Check(prog, WithMaxTS(2), WithScheduler(sched), WithMaxStates(300000))
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != Error {
				continue
			}
			validated++
			ground, err := Explore(mustParse(t, src), WithMaxStates(300000))
			if err != nil {
				t.Fatal(err)
			}
			if ground.Verdict == Safe {
				t.Errorf("FALSE ERROR: scheduler %v reports an error on a safe program (seed %d)\n%s",
					sched, seed, src)
			}
		}
	}
	if validated == 0 {
		t.Error("no errors found by restricted schedulers; soundness tested vacuously")
	}
	t.Logf("validated %d restricted-scheduler error reports", validated)
}

// TestSchedulerCoverageOrdering: on the random population, the
// nondeterministic scheduler finds at least as many bugs as each
// restricted variant.
func TestSchedulerCoverageOrdering(t *testing.T) {
	found := map[Scheduler]int{}
	for seed := int64(100); seed < 160; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, sched := range []Scheduler{SchedulerNondet, SchedulerDrainAll, SchedulerAtCallsOnly} {
			prog := mustParse(t, src)
			res, err := Check(prog, WithMaxTS(2), WithScheduler(sched), WithMaxStates(300000))
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict == Error {
				found[sched]++
			}
		}
	}
	t.Logf("bugs found: nondet=%d drain-all=%d at-calls-only=%d",
		found[SchedulerNondet], found[SchedulerDrainAll], found[SchedulerAtCallsOnly])
	if found[SchedulerDrainAll] > found[SchedulerNondet] {
		t.Errorf("drain-all found more bugs (%d) than nondet (%d)?",
			found[SchedulerDrainAll], found[SchedulerNondet])
	}
	if found[SchedulerAtCallsOnly] > found[SchedulerNondet] {
		t.Errorf("at-calls-only found more bugs (%d) than nondet (%d)?",
			found[SchedulerAtCallsOnly], found[SchedulerNondet])
	}
}
